"""End-to-end integration tests across the whole stack.

These exercise the same paths the examples and benchmarks use: generate a
workload, train NeuroCuts, compare against baselines, serialise the result,
and apply online updates — each at a deliberately tiny scale.
"""

import pytest

from repro.baselines import HiCutsBuilder, default_baselines
from repro.classbench import ClassifierSpec, generate_classifier, generate_trace
from repro.metrics import measure_lookup, summarize_improvements
from repro.neurocuts import (
    IncrementalUpdater,
    NeuroCutsConfig,
    NeuroCutsTrainer,
    profile_tree,
)
from repro.rules import Rule, io as rules_io
from repro.tree import (
    TreeClassifier,
    load_tree,
    save_tree,
    validate_classifier,
)
from repro.harness import TINY, run_figure11, table1_rows


@pytest.fixture(scope="module")
def workload():
    return generate_classifier("ipc1", 50, seed=11)


class TestEndToEnd:
    def test_full_pipeline_train_validate_serialize(self, tmp_path, workload):
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16), max_timesteps_total=800,
            timesteps_per_batch=400, max_timesteps_per_rollout=200,
            leaf_threshold=8, seed=2,
        )
        trainer = NeuroCutsTrainer(workload, config)
        result = trainer.train()
        classifier = result.best_classifier()

        # 1. The learnt tree is a correct classifier.
        report = validate_classifier(classifier, num_random_packets=120)
        assert report.is_correct

        # 2. It can be saved and reloaded without changing behaviour.
        path = tmp_path / "neurocuts_tree.json"
        save_tree(result.best_tree, path)
        restored = load_tree(path, workload)
        for packet in workload.sample_packets(40, seed=3):
            a = result.best_tree.classify(packet)
            b = restored.classify(packet)
            assert (a.priority if a else None) == (b.priority if b else None)

        # 3. It supports incremental updates afterwards.
        updater = IncrementalUpdater(restored)
        updater.add_rule(Rule.from_fields(dst_port=(8443, 8444), priority=10 ** 6))
        updated = TreeClassifier(restored.ruleset, [restored])
        assert validate_classifier(updated, num_random_packets=80).is_correct

    def test_classbench_file_roundtrip_feeds_builders(self, tmp_path, workload):
        path = tmp_path / "rules.cb"
        rules_io.dump(workload, path)
        loaded = rules_io.load(path)
        result = HiCutsBuilder(binth=8).build_with_stats(loaded)
        assert validate_classifier(result.classifier,
                                   num_random_packets=80).is_correct

    def test_baseline_comparison_and_improvement_summary(self, workload):
        per_algorithm = {}
        for name, builder in default_baselines(binth=8).items():
            result = builder.build_with_stats(workload)
            per_algorithm[name] = {workload.name: result.stats.classification_time}
        summary = summarize_improvements(
            per_algorithm["HiCuts"], per_algorithm["CutSplit"]
        )
        assert -10.0 < summary.median < 1.0

    def test_trace_driven_measurement(self, workload):
        classifier = HiCutsBuilder(binth=8).build(workload)
        trace = generate_trace(workload, num_packets=200, seed=5)
        metrics = measure_lookup(classifier, trace)
        # Observed depth can never exceed the analytic worst case.
        assert metrics.max_depth <= classifier.stats().classification_time

    def test_figure11_runner_produces_series(self):
        """The Figure 11 runner yields one point per coefficient (tiny budget)."""
        import dataclasses

        scale = dataclasses.replace(TINY, neurocuts_timesteps=1200,
                                    neurocuts_batch=400)
        specs = [ClassifierSpec(seed_name="fw5", scale="1k", num_rules=50, seed=0)]
        result = run_figure11(scale, coefficients=(0.0, 1.0), specs=specs)
        series = result.series()
        assert series["c"] == [0.0, 1.0]
        assert all(v > 0 for v in series["median_classification_time"])
        assert all(v > 0 for v in series["median_bytes_per_rule"])

    def test_table1_matches_paper(self):
        mismatches = [name for name, paper, ours in table1_rows() if paper != ours]
        assert mismatches == []

    def test_figure5_style_profile_of_trained_tree(self, workload):
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16), max_timesteps_total=600,
            timesteps_per_batch=300, max_timesteps_per_rollout=150,
            leaf_threshold=8, seed=4,
        )
        trainer = NeuroCutsTrainer(workload, config)
        result = trainer.train()
        profile = profile_tree(result.best_tree)
        assert profile.depth == result.best_tree.depth()
        assert profile.num_nodes == result.best_tree.num_nodes()
