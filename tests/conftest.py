"""Shared fixtures for the test suite.

Training-based fixtures are deliberately tiny (tens of rules, a few hundred
timesteps) so the whole suite stays fast; the benchmarks exercise the larger
scales.
"""

from __future__ import annotations

import pytest

from repro.classbench import generate_classifier
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.rules import Rule, RuleSet


@pytest.fixture(scope="session")
def small_acl_ruleset() -> RuleSet:
    """An ACL-family classifier with 60 rules (plus default)."""
    return generate_classifier("acl1", 60, seed=7)


@pytest.fixture(scope="session")
def small_fw_ruleset() -> RuleSet:
    """A firewall-family classifier with 60 rules (harder to cut)."""
    return generate_classifier("fw5", 60, seed=7)


@pytest.fixture(scope="session")
def tiny_ruleset() -> RuleSet:
    """A hand-written 4-rule classifier mirroring the paper's Figure 1."""
    rules = [
        Rule.from_prefixes(
            src_ip="10.0.0.0/32", dst_ip="10.0.0.0/16", priority=3, name="r0"
        ),
        Rule.from_fields(
            src_port=(0, 1024), dst_port=(0, 1024), protocol=(6, 7),
            priority=2, name="r1",
        ),
        Rule.from_prefixes(dst_ip="192.168.0.0/16", protocol=17, priority=1,
                           name="r2"),
        Rule.wildcard(priority=0, name="default"),
    ]
    return RuleSet(rules, name="figure1")


@pytest.fixture(scope="session")
def test_config() -> NeuroCutsConfig:
    """A NeuroCuts config small enough for unit tests."""
    return NeuroCutsConfig.fast_test_config(
        hidden_sizes=(16, 16),
        max_timesteps_total=900,
        timesteps_per_batch=300,
        max_timesteps_per_rollout=150,
        leaf_threshold=8,
        seed=3,
    )


@pytest.fixture(scope="session")
def trained_trainer(small_acl_ruleset, test_config) -> NeuroCutsTrainer:
    """A NeuroCuts trainer that has completed a (tiny) training run."""
    trainer = NeuroCutsTrainer(small_acl_ruleset, test_config)
    trainer.train()
    return trainer
