"""Tests for the bench regression gate (`repro.obs.compare` + `repro bench`).

Covers the comparison semantics directly (exact counters, tolerance-banded
direction-aware timings, config drift, skips) and the CLI round-trip the
acceptance criteria name: `repro serve-bench --json` followed by
`repro bench compare` must exit 0 on a clean self-compare and 1 once a
deterministic counter is perturbed.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    BenchRecord,
    compare_records,
    read_bench,
    timing_direction,
    timings_comparable,
    write_bench,
)


def _record(counters=None, timings=None, config=None, area="engine"):
    return BenchRecord(
        name="unit", area=area,
        config=dict(config if config is not None else {"seed": 0}),
        counters=dict(counters if counters is not None
                      else {"num_packets": 1000}),
        timings=dict(timings if timings is not None
                     else {"compile_seconds": 1.0}),
    )


def _statuses(report, kind=None):
    return {c.metric: c.status for c in report.checks
            if kind is None or c.kind == kind}


class TestTimingDirection:
    @pytest.mark.parametrize("metric", [
        "compiled_pps", "throughput_pps", "median_speedup",
        "timesteps_per_sec", "cache_hit_rate",
    ])
    def test_higher_is_better_markers(self, metric):
        assert timing_direction(metric) == "higher"

    @pytest.mark.parametrize("metric", [
        "compile_seconds", "latency_p99_ms", "wall_seconds",
    ])
    def test_lower_is_better_default(self, metric):
        assert timing_direction(metric) == "lower"


class TestTimingsComparable:
    def test_same_machine_class_is_comparable(self):
        # Both records get this machine's fingerprint by default.
        ok, reason = timings_comparable(_record(), _record())
        assert ok and reason == ""

    def test_different_cpu_count_is_not_comparable(self):
        run, baseline = _record(), _record()
        baseline.environment = dict(baseline.environment)
        baseline.environment["cpu_count"] = \
            run.environment["cpu_count"] + 3
        ok, reason = timings_comparable(run, baseline)
        assert not ok
        assert "cpu_count" in reason and "machine class" in reason


class TestCompareRecords:
    def test_identical_records_pass(self):
        report = compare_records(_record(), _record())
        assert report.ok
        assert all(c.status == "ok" for c in report.checks)

    def test_counter_change_is_regression_either_direction(self):
        for moved in (999, 1001):
            report = compare_records(_record(counters={"num_packets": moved}),
                                     _record())
            assert not report.ok
            failure, = report.failures
            assert failure.kind == "counter"
            assert failure.metric == "num_packets"

    def test_missing_counter_fails_new_counter_informs(self):
        baseline = _record(counters={"a": 1, "b": 2})
        run = _record(counters={"b": 2, "c": 3})
        report = compare_records(run, baseline)
        statuses = _statuses(report, kind="counter")
        assert statuses == {"a": "missing", "b": "ok", "c": "new"}
        assert not report.ok  # the missing counter fails the gate

    def test_timing_band_lower_is_better(self):
        baseline = _record(timings={"compile_seconds": 1.0})
        within = _record(timings={"compile_seconds": 1.2})
        assert compare_records(within, baseline).ok
        beyond = _record(timings={"compile_seconds": 1.3})
        report = compare_records(beyond, baseline)
        assert not report.ok
        assert report.failures[0].metric == "compile_seconds"
        # Getting *faster* by any amount never fails.
        assert compare_records(
            _record(timings={"compile_seconds": 0.01}), baseline).ok

    def test_timing_band_higher_is_better(self):
        baseline = _record(timings={"compiled_pps": 1000.0})
        assert compare_records(
            _record(timings={"compiled_pps": 800.0}), baseline).ok
        report = compare_records(
            _record(timings={"compiled_pps": 700.0}), baseline)
        assert not report.ok
        # A throughput explosion upward is an improvement, not a failure.
        assert compare_records(
            _record(timings={"compiled_pps": 9000.0}), baseline).ok

    def test_custom_tolerance(self):
        baseline = _record(timings={"compile_seconds": 1.0})
        run = _record(timings={"compile_seconds": 1.4})
        assert not compare_records(run, baseline).ok
        assert compare_records(run, baseline, timing_tolerance=0.5).ok
        with pytest.raises(ValueError):
            compare_records(run, baseline, timing_tolerance=-0.1)

    def test_zero_baseline_timing_never_banded(self):
        baseline = _record(timings={"compile_seconds": 0.0})
        run = _record(timings={"compile_seconds": 5.0})
        report = compare_records(run, baseline)
        assert report.ok

    def test_skip_timings_records_skips_not_passes(self):
        baseline = _record(timings={"compile_seconds": 1.0})
        run = _record(timings={"compile_seconds": 100.0})
        report = compare_records(run, baseline, check_timings=False)
        assert report.ok
        assert not report.timings_checked
        assert _statuses(report, kind="timing") == \
            {"compile_seconds": "skipped"}

    def test_config_drift_fails_unless_ignored(self):
        baseline = _record(config={"seed": 0, "binth": 8})
        run = _record(config={"seed": 1, "binth": 8})
        report = compare_records(run, baseline)
        assert not report.ok
        assert report.failures[0].kind == "config"
        assert compare_records(run, baseline, ignore_config=True).ok

    def test_area_mismatch_fails(self):
        report = compare_records(_record(area="serve"), _record(area="engine"))
        assert not report.ok
        assert report.failures[0].metric == "area"

    def test_rows_cover_every_check(self):
        report = compare_records(_record(), _record())
        rows = report.rows()
        assert len(rows) == len(report.checks)
        assert all(len(row) == 5 for row in rows)


class TestBenchCompareCli:
    def _write_pair(self, tmp_path):
        record = _record(counters={"num_packets": 1000, "mismatches": 0},
                         timings={"compiled_pps": 5000.0})
        baseline_path = write_bench(record, tmp_path / "BENCH_baseline.json")
        run_path = write_bench(record, tmp_path / "BENCH_run.json")
        return run_path, baseline_path

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        code = main(["bench", "compare", str(run_path), str(baseline_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "gate passed" in out and "num_packets" in out

    def test_injected_counter_regression_exits_one(self, tmp_path, capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        data = json.loads(run_path.read_text())
        data["counters"]["num_packets"] += 7
        run_path.write_text(json.dumps(data))
        code = main(["bench", "compare", str(run_path), str(baseline_path)])
        assert code == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out
        assert "regression(s)" in captured.err

    def test_skip_timings_flag(self, tmp_path, capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        data = json.loads(run_path.read_text())
        data["timings"]["compiled_pps"] = 1.0  # catastrophic, but skipped
        run_path.write_text(json.dumps(data))
        code = main(["bench", "compare", str(run_path), str(baseline_path),
                     "--skip-timings"])
        assert code == 0
        assert "skipped" in capsys.readouterr().out

    def test_min_cpus_gates_timings(self, tmp_path, capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        data = json.loads(run_path.read_text())
        data["timings"]["compiled_pps"] = 1.0
        run_path.write_text(json.dumps(data))
        code = main(["bench", "compare", str(run_path), str(baseline_path),
                     "--min-cpus", "100000"])
        assert code == 0
        assert "skipped" in capsys.readouterr().out

    def test_cross_machine_baseline_skips_timings(self, tmp_path, capsys):
        """The CI scenario: a 4-vCPU runner gated against a dev-machine
        baseline must not band wall-clock numbers across machine classes."""
        run_path, baseline_path = self._write_pair(tmp_path)
        data = json.loads(run_path.read_text())
        data["timings"]["compiled_pps"] = 1.0  # catastrophic on paper
        data["environment"]["cpu_count"] += 3  # ...but a different machine
        run_path.write_text(json.dumps(data))
        code = main(["bench", "compare", str(run_path), str(baseline_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "machine class" in out and "skipped" in out

    def test_cross_machine_timings_flag_forces_the_band(self, tmp_path,
                                                        capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        data = json.loads(run_path.read_text())
        data["timings"]["compiled_pps"] = 1.0
        data["environment"]["cpu_count"] += 3
        run_path.write_text(json.dumps(data))
        code = main(["bench", "compare", str(run_path), str(baseline_path),
                     "--cross-machine-timings"])
        assert code == 1
        assert "compiled_pps" in capsys.readouterr().out

    def test_unreadable_record_exits_two(self, tmp_path, capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        code = main(["bench", "compare", str(tmp_path / "nope.json"),
                     str(baseline_path)])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unknown_schema_exits_two(self, tmp_path, capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        run_path.write_text('{"schema_version": 99}')
        code = main(["bench", "compare", str(run_path), str(baseline_path)])
        assert code == 2
        assert "schema version" in capsys.readouterr().err

    def test_negative_tolerance_exits_two(self, tmp_path, capsys):
        run_path, baseline_path = self._write_pair(tmp_path)
        code = main(["bench", "compare", str(run_path), str(baseline_path),
                     "--timing-tolerance", "-1"])
        assert code == 2
        capsys.readouterr()

    def test_bench_show_renders_record(self, tmp_path, capsys):
        run_path, _ = self._write_pair(tmp_path)
        code = main(["bench", "show", str(run_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "num_packets" in out and "compiled_pps" in out


class TestBenchCompareDirectory:
    """Directory mode: one invocation gates a whole scorecard suite."""

    def _write_dirs(self, tmp_path, names=("BENCH_a.json", "BENCH_b.json")):
        run_dir = tmp_path / "run"
        baseline_dir = tmp_path / "baselines"
        for name in names:
            record = _record(counters={"num_packets": 1000},
                             timings={"compiled_pps": 5000.0})
            write_bench(record, baseline_dir / name)
            write_bench(record, run_dir / name)
        return run_dir, baseline_dir

    def test_clean_directory_compare_exits_zero(self, tmp_path, capsys):
        run_dir, baseline_dir = self._write_dirs(tmp_path)
        code = main(["bench", "compare", str(run_dir), str(baseline_dir),
                     "--skip-timings"])
        assert code == 0
        out = capsys.readouterr().out
        assert "directory gate passed" in out and "2 record pair" in out

    def test_one_regression_fails_the_whole_gate(self, tmp_path, capsys):
        run_dir, baseline_dir = self._write_dirs(tmp_path)
        path = run_dir / "BENCH_b.json"
        data = json.loads(path.read_text())
        data["counters"]["num_packets"] += 1
        path.write_text(json.dumps(data))
        code = main(["bench", "compare", str(run_dir), str(baseline_dir),
                     "--skip-timings"])
        assert code == 1
        assert "num_packets" in capsys.readouterr().out

    def test_missing_run_record_fails(self, tmp_path, capsys):
        run_dir, baseline_dir = self._write_dirs(tmp_path)
        (run_dir / "BENCH_b.json").unlink()
        code = main(["bench", "compare", str(run_dir), str(baseline_dir),
                     "--skip-timings"])
        assert code == 1
        assert "BENCH_b.json" in capsys.readouterr().err

    def test_run_only_record_is_informational(self, tmp_path, capsys):
        run_dir, baseline_dir = self._write_dirs(tmp_path)
        write_bench(_record(), run_dir / "BENCH_extra.json")
        code = main(["bench", "compare", str(run_dir), str(baseline_dir),
                     "--skip-timings"])
        assert code == 0
        assert "BENCH_extra.json" in capsys.readouterr().out

    def test_empty_baseline_dir_exits_two(self, tmp_path, capsys):
        run_dir, baseline_dir = self._write_dirs(tmp_path)
        for path in baseline_dir.glob("BENCH_*.json"):
            path.unlink()
        code = main(["bench", "compare", str(run_dir), str(baseline_dir),
                     "--skip-timings"])
        assert code == 2
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_mixed_file_and_directory_exits_two(self, tmp_path, capsys):
        run_dir, baseline_dir = self._write_dirs(tmp_path)
        code = main(["bench", "compare", str(run_dir / "BENCH_a.json"),
                     str(baseline_dir)])
        assert code == 2
        assert "both" in capsys.readouterr().err


class TestServeBenchRoundTrip:
    """The acceptance path: serve-bench --json -> bench compare."""

    _ARGS = ["serve-bench", "--tenants", "2", "--num-rules", "40",
             "--num-packets", "800", "--num-flows", "80",
             "--churn-events", "1", "--sync-swaps", "--verify",
             "--seed", "0"]

    def test_round_trip_and_injected_regression(self, tmp_path, capsys):
        baseline_path = tmp_path / "BENCH_serve.json"
        run_path = tmp_path / "BENCH_serve_run.json"
        assert main(self._ARGS + ["--json", str(baseline_path)]) == 0
        assert main(self._ARGS + ["--json", str(run_path)]) == 0
        capsys.readouterr()

        baseline = read_bench(baseline_path)
        assert baseline.area == "serve"
        assert baseline.counters["num_requests"] == 800
        assert baseline.counters["exact_mismatches"] == 0
        assert "throughput_pps" in baseline.timings

        # Clean self-compare: deterministic counters match exactly across
        # two independent runs (timings are machine noise; skip them).
        code = main(["bench", "compare", str(run_path), str(baseline_path),
                     "--skip-timings"])
        assert code == 0
        capsys.readouterr()

        # Perturb one deterministic counter -> gate trips.
        data = json.loads(run_path.read_text())
        data["counters"]["cache_hits"] += 1
        run_path.write_text(json.dumps(data))
        code = main(["bench", "compare", str(run_path), str(baseline_path),
                     "--skip-timings"])
        assert code == 1
        assert "cache_hits" in capsys.readouterr().out

    def test_engine_bench_json_compares_clean(self, tmp_path, capsys):
        args = ["engine-bench", "--seed-family", "acl1", "--num-rules", "60",
                "--num-packets", "2000", "--seed", "1"]
        first = tmp_path / "BENCH_engine.json"
        second = tmp_path / "BENCH_engine_2.json"
        assert main(args + ["--json", str(first)]) == 0
        assert main(args + ["--json", str(second)]) == 0
        capsys.readouterr()
        record = read_bench(first)
        assert record.area == "engine"
        assert record.counters["mismatches"] == 0
        assert main(["bench", "compare", str(second), str(first),
                     "--skip-timings"]) == 0
