"""Tests for the NeuroCuts environment, reward calculation, and trainer."""

import math

import numpy as np
import pytest

from repro.rules import Dimension, Rule, RuleSet
from repro.tree import CutAction, DecisionTree, validate_classifier
from repro.neurocuts import (
    NeuroCutsConfig,
    NeuroCutsEnv,
    NeuroCutsTrainer,
    RewardCalculator,
    linear_scaling,
    log_scaling,
    profile_tree,
)
from repro.neurocuts.trainer import NeuroCutsBuilder
from repro.rl import Policy
from repro.nn import ActorCriticMLP


class TestRewardCalculator:
    def test_scaling_functions(self):
        assert linear_scaling(7.0) == 7.0
        assert log_scaling(math.e) == pytest.approx(1.0)
        assert log_scaling(0.0) == 0.0  # clamped at log(1)

    def test_time_only_reward_is_negative_depth_cost(self, small_acl_ruleset):
        config = NeuroCutsConfig(time_space_coeff=1.0, reward_scaling="linear")
        calc = RewardCalculator(config)
        tree = DecisionTree(small_acl_ruleset, leaf_threshold=len(small_acl_ruleset))
        components = calc.subtree_reward(tree.root)
        assert components.time == 1.0
        assert components.reward == -1.0

    def test_space_only_reward_charges_excess_over_rule_storage(
            self, small_acl_ruleset):
        from repro.tree import NODE_HEADER_BYTES, RULE_POINTER_BYTES

        config = NeuroCutsConfig(time_space_coeff=0.0, reward_scaling="linear")
        calc = RewardCalculator(config)
        tree = DecisionTree(small_acl_ruleset, leaf_threshold=len(small_acl_ruleset))
        components = calc.subtree_reward(tree.root)
        # The footprint reported is the raw subtree space, but the reward
        # only charges the excess over storing each rule once; for a
        # single-leaf tree that excess is exactly the node header.
        num_rules = tree.root.num_rules
        assert components.space == \
            NODE_HEADER_BYTES + RULE_POINTER_BYTES * num_rules
        assert components.reward == -NODE_HEADER_BYTES

    def test_space_excess_ranks_trees_like_raw_space(self, small_acl_ruleset):
        from repro.neurocuts import space_excess

        # At the root the rule count is fixed, so excess space is raw space
        # minus a constant: orderings of complete trees are unchanged.
        n = len(small_acl_ruleset)
        assert space_excess(5000.0, n) - space_excess(4000.0, n) == \
            pytest.approx(1000.0)
        # The floor clamps at 1 so log scaling stays defined.
        assert space_excess(1.0, n) == 1.0

    def test_floor_discount_fades_out_by_half(self):
        from repro.neurocuts import floor_discount

        # Full floor exclusion in the pure-space regime, the paper's
        # raw-space reward from c = 0.5 on.
        assert floor_discount(0.0) == 1.0
        assert floor_discount(0.25) == pytest.approx(0.5)
        assert floor_discount(0.5) == 0.0
        assert floor_discount(1.0) == 0.0

    def test_mixed_reward_matches_raw_space_at_half(self, small_acl_ruleset):
        import math

        config = NeuroCutsConfig(time_space_coeff=0.5, reward_scaling="log")
        calc = RewardCalculator(config)
        tree = DecisionTree(small_acl_ruleset, leaf_threshold=len(small_acl_ruleset))
        components = calc.subtree_reward(tree.root)
        expected = -(0.5 * math.log(components.time or 1.0)
                     + 0.5 * math.log(components.space))
        assert components.reward == pytest.approx(expected)

    def test_mixed_reward_interpolates(self):
        config = NeuroCutsConfig(time_space_coeff=0.5, reward_scaling="log")
        calc = RewardCalculator(config)
        combined = calc.combine(time=8.0, space=1024.0)
        expected = -(0.5 * math.log(8.0) + 0.5 * math.log(1024.0))
        assert combined.reward == pytest.approx(expected)
        assert calc.objective(8.0, 1024.0) == pytest.approx(-expected)


@pytest.fixture
def env_and_policy(small_acl_ruleset, test_config):
    env = NeuroCutsEnv(small_acl_ruleset, test_config)
    model = ActorCriticMLP(
        obs_size=env.observation_size,
        action_sizes=env.action_sizes,
        hidden_sizes=(16, 16),
        seed=0,
    )
    policy = Policy(model, env.action_space.space, seed=0)
    return env, policy


class TestEnv:
    def test_rollout_builds_complete_or_truncated_tree(self, env_and_policy):
        env, policy = env_and_policy
        result = env.rollout(policy)
        assert result.tree.is_complete()
        assert result.num_steps >= 1
        assert result.num_steps <= env.config.max_timesteps_per_rollout

    def test_rollout_batch_shapes(self, env_and_policy):
        env, policy = env_and_policy
        result = env.rollout(policy)
        batch = result.batch
        assert batch is not None
        assert len(batch) == result.num_steps
        assert batch.obs.shape == (result.num_steps, env.observation_size)
        assert batch.actions.shape == (result.num_steps, 2)
        assert len(batch.action_masks) == 2

    def test_rewards_are_negative_objectives(self, env_and_policy):
        env, policy = env_and_policy
        result = env.rollout(policy)
        assert np.all(result.batch.returns <= 0)
        assert result.objective == -result.root_reward.reward
        # The root decision's return equals the whole-tree reward.
        assert result.batch.returns[0] == pytest.approx(result.root_reward.reward)

    def test_rollout_tree_classifies_correctly(self, env_and_policy,
                                               small_acl_ruleset):
        from repro.tree import TreeClassifier

        env, policy = env_and_policy
        result = env.rollout(policy)
        classifier = TreeClassifier(small_acl_ruleset, [result.tree])
        report = validate_classifier(classifier, num_random_packets=100)
        assert report.is_correct

    def test_deterministic_rollout_no_experience(self, env_and_policy):
        env, policy = env_and_policy
        result = env.rollout(policy, deterministic=True, collect_experience=False)
        assert result.batch is None
        assert result.tree.is_complete()

    def test_rollout_respects_depth_truncation(self, small_fw_ruleset):
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16), max_tree_depth=3, max_timesteps_per_rollout=500,
            leaf_threshold=1, seed=0,
        )
        env = NeuroCutsEnv(small_fw_ruleset, config)
        model = ActorCriticMLP(env.observation_size, env.action_sizes,
                               hidden_sizes=(16, 16), seed=0)
        policy = Policy(model, env.action_space.space, seed=0)
        result = env.rollout(policy)
        assert result.tree.depth() <= 3


class TestTrainer:
    def test_training_produces_valid_classifier(self, trained_trainer,
                                                 small_acl_ruleset):
        result = trained_trainer.result()
        classifier = result.best_classifier()
        report = validate_classifier(classifier, num_random_packets=150)
        assert report.is_correct
        assert result.best_objective > 0
        assert result.timesteps_total > 0
        assert len(result.history) >= 1

    def test_history_tracks_monotone_best(self, trained_trainer):
        best_values = [h.best_objective for h in trained_trainer.history]
        assert all(b >= a for a, b in zip(best_values[1:], best_values[:-1]))

    def test_sample_trees_are_complete(self, trained_trainer):
        trees = trained_trainer.sample_trees(2)
        assert len(trees) == 2
        for tree in trees:
            assert tree.is_complete()
            profile = profile_tree(tree)
            assert profile.num_nodes >= 1

    def test_builder_interface(self, small_acl_ruleset, test_config):
        builder = NeuroCutsBuilder(config=test_config)
        result = builder.build_with_stats(small_acl_ruleset)
        assert result.algorithm == "NeuroCuts"
        assert result.classification_time >= 1
        assert builder.last_result is not None

    def test_convergence_patience_stops_early(self, small_acl_ruleset):
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16),
            max_timesteps_total=100_000,
            timesteps_per_batch=200,
            max_timesteps_per_rollout=100,
            leaf_threshold=16,
            convergence_patience=2,
            seed=0,
        )
        trainer = NeuroCutsTrainer(small_acl_ruleset, config)
        result = trainer.train(max_iterations=50)
        # Far fewer timesteps than the cap because the patience fired.
        assert result.timesteps_total < 100_000

    def test_partition_mode_training(self, small_fw_ruleset):
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16),
            max_timesteps_total=600,
            timesteps_per_batch=300,
            max_timesteps_per_rollout=150,
            partition_mode="efficuts",
            time_space_coeff=0.0,
            reward_scaling="log",
            leaf_threshold=8,
            seed=1,
        )
        trainer = NeuroCutsTrainer(small_fw_ruleset, config)
        result = trainer.train()
        classifier = result.best_classifier()
        report = validate_classifier(classifier, num_random_packets=100)
        assert report.is_correct
