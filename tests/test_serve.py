"""Tests for the multi-tenant serving layer (`repro.serve`)."""

from __future__ import annotations

import random

import pytest

from repro.baselines import HiCutsBuilder
from repro.classbench import generate_classifier
from repro.rules import Packet, Rule
from repro.serve import (
    BatchPolicy,
    ClassificationService,
    EngineSlot,
    MicroBatcher,
    Request,
    RuleUpdate,
    TenantRegistry,
    UnknownTenantError,
)
from repro.workloads import (
    ChurnConfig,
    FlowTraceConfig,
    build_workload,
    make_tenant_specs,
)


def _request(tenant: str, time: float, value: int = 1) -> Request:
    packet = Packet.from_values((value, value, value % 65536,
                                 value % 65536, value % 256))
    return Request(tenant_id=tenant, packet=packet, time=time)


class TestBatchPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay=-1.0)


class TestMicroBatcher:
    def test_releases_full_batches(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=3, max_delay=10.0))
        assert batcher.offer(_request("a", 0.0)) == []
        assert batcher.offer(_request("a", 0.1)) == []
        released = batcher.offer(_request("a", 0.2))
        assert len(released) == 1
        tenant, batch = released[0]
        assert tenant == "a" and len(batch) == 3
        assert len(batcher) == 0

    def test_deadline_releases_oldest_queue(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_delay=1.0))
        batcher.offer(_request("a", 0.0))
        batcher.offer(_request("b", 0.5))
        released = batcher.poll(1.2)
        assert [tenant for tenant, _ in released] == ["a"]
        # The request arriving at 1.6 expires b's queue (0.5 + 1.0 <= 1.6).
        released = batcher.offer(_request("c", 1.6))
        assert [tenant for tenant, _ in released] == ["b"]

    def test_queues_are_per_tenant(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=2, max_delay=10.0))
        batcher.offer(_request("a", 0.0))
        released = batcher.offer(_request("b", 0.0))
        assert released == []
        released = batcher.offer(_request("a", 0.1))
        assert len(released) == 1 and released[0][0] == "a"
        assert batcher.pending_tenants == ["b"]

    def test_flush_all_drains_everything(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=10, max_delay=10.0))
        batcher.offer(_request("a", 0.0))
        batcher.offer(_request("b", 0.0))
        released = batcher.flush_all()
        assert sorted(t for t, _ in released) == ["a", "b"]
        assert len(batcher) == 0 and batcher.flush_all() == []


@pytest.fixture(scope="module")
def serving_ruleset():
    return generate_classifier("acl1", 80, seed=11)


@pytest.fixture()
def slot(serving_ruleset):
    classifier = HiCutsBuilder(binth=8).build(serving_ruleset)
    return EngineSlot("t0", classifier, flow_cache_size=256, background=False)


class TestEngineSlot:
    def _fresh_rule(self, slot, **fields) -> Rule:
        priority = max(r.priority for r in slot.ruleset) + 1
        return Rule.from_prefixes(src_ip="198.51.100.0/24", protocol=6,
                                  priority=priority, name="hot", **fields)

    def test_starts_at_epoch_zero(self, slot, serving_ruleset):
        assert slot.epoch == 0
        assert slot.ruleset_at(0) is serving_ruleset
        assert not slot.swap_pending

    def test_update_swaps_engine_and_ruleset(self, slot):
        rule = self._fresh_rule(slot)
        old_engine = slot.engine()
        slot.apply_update(adds=[rule])
        assert slot.epoch == 1  # synchronous slot: installed immediately
        assert slot.engine() is not old_engine
        assert rule in slot.ruleset.rules
        # A packet inside the new rule is answered by the new rule.
        packet = slot.ruleset.sample_matching_packet(rule, random.Random(0))
        match = slot.engine().classify(packet)
        assert match is not None and match.priority == rule.priority

    def test_remove_rule_takes_effect(self, slot):
        victim = next(r for r in slot.ruleset.rules
                      if r.num_wildcard_dims() < 5)
        packet = slot.ruleset.sample_matching_packet(victim, random.Random(1))
        slot.apply_update(removes=[victim])
        post = slot.ruleset
        assert victim not in post.rules
        expected = post.classify(packet)
        actual = slot.engine().classify(packet)
        assert (actual.priority if actual else None) == \
            (expected.priority if expected else None)

    def test_empty_update_is_a_noop(self, slot):
        slot.apply_update()
        assert slot.epoch == 0 and slot.swap_stats.swaps == 0

    def test_background_swap_serves_old_engine_until_ready(self,
                                                           serving_ruleset):
        classifier = HiCutsBuilder(binth=8).build(serving_ruleset)
        slot = EngineSlot("bg", classifier, background=True)
        rule = Rule.from_prefixes(
            src_ip="198.51.100.0/24",
            priority=max(r.priority for r in slot.ruleset) + 1,
        )
        slot.apply_update(adds=[rule])
        # Whether or not the builder thread already finished, the engine
        # accessor must always return a consistent engine...
        engine = slot.engine()
        assert engine is not None
        # ...and after the forced swap the new ruleset generation serves.
        slot.force_swap()
        assert slot.epoch == 1
        assert not slot.swap_pending
        assert rule in slot.ruleset_at(1).rules
        assert slot.swap_stats.swaps == 1

    def test_back_to_back_updates_stay_ordered(self, serving_ruleset):
        classifier = HiCutsBuilder(binth=8).build(serving_ruleset)
        slot = EngineSlot("bb", classifier, background=True)
        base = max(r.priority for r in slot.ruleset) + 1
        rules = [Rule.from_prefixes(src_ip=f"203.0.{i}.0/24",
                                    priority=base + i, name=f"u{i}")
                 for i in range(3)]
        for rule in rules:
            slot.apply_update(adds=[rule])
        slot.force_swap()
        assert slot.epoch == 3
        # Each epoch's snapshot contains exactly the updates applied so far.
        for i in range(3):
            snapshot = slot.ruleset_at(i + 1)
            assert rules[i] in snapshot.rules
            for later in rules[i + 1:]:
                assert later not in snapshot.rules

    def test_cumulative_cache_stats_survive_swaps(self, slot):
        packet = next(iter(slot.ruleset.sample_packets(1, seed=3)))
        slot.engine().classify(packet)
        slot.engine().classify(packet)
        before = slot.cache_stats()
        assert before.hits == 1 and before.misses == 1
        slot.apply_update(adds=[self._fresh_rule(slot)])
        slot.engine().classify(packet)
        after = slot.cache_stats()
        # The retired engine's counters are folded in, the new engine's
        # (one cold miss) added on top, and the swap records the retired
        # cache's flow as invalidated.
        assert after.hits == 1 and after.misses == 2
        assert after.invalidations == 1


class TestTenantRegistry:
    def test_register_and_lookup(self, serving_ruleset):
        registry = TenantRegistry()
        slot = registry.register("alpha", serving_ruleset)
        assert "alpha" in registry and len(registry) == 1
        assert registry.slot("alpha") is slot
        assert registry.tenants() == ["alpha"]

    def test_duplicate_and_unknown_tenants_raise(self, serving_ruleset):
        registry = TenantRegistry()
        registry.register("alpha", serving_ruleset)
        with pytest.raises(ValueError):
            registry.register("alpha", serving_ruleset)
        with pytest.raises(UnknownTenantError):
            registry.slot("beta")

    def test_register_needs_rules_or_classifier(self):
        with pytest.raises(ValueError):
            TenantRegistry().register("empty")

    def test_register_rejects_unknown_algorithm(self, serving_ruleset):
        with pytest.raises(ValueError):
            TenantRegistry().register("alpha", serving_ruleset,
                                      algorithm="Nope")

    def test_deregister_drains_pending_swap(self, serving_ruleset):
        registry = TenantRegistry(background_swaps=True)
        slot = registry.register("alpha", serving_ruleset)
        rule = Rule.from_prefixes(
            src_ip="203.0.113.0/24",
            priority=max(r.priority for r in slot.ruleset) + 1,
        )
        registry.apply_update("alpha", adds=[rule])
        removed = registry.deregister("alpha")
        assert removed.epoch == 1 and "alpha" not in registry

    def test_telemetry_shape(self, serving_ruleset):
        registry = TenantRegistry()
        registry.register("alpha", serving_ruleset)
        entry = registry.telemetry()["alpha"]
        assert set(entry) == {"rules", "epoch", "cache", "swap", "retrain"}
        assert entry["cache"]["hits"] == 0 and entry["swap"]["swaps"] == 0
        assert entry["retrain"]["accumulated_updates"] == 0
        assert entry["retrain"]["needs_retraining"] is False


class TestClassificationService:
    @pytest.fixture()
    def scenario(self):
        specs = make_tenant_specs(2, families=("acl1", "fw1"), num_rules=60,
                                  seed=2)
        workload = build_workload(
            specs,
            FlowTraceConfig(num_packets=1500, num_flows=120, seed=5),
            churn=ChurnConfig(num_events=2, adds_per_event=2,
                              removes_per_event=1),
        )
        registry = TenantRegistry(default_flow_cache_size=512,
                                  background_swaps=False)
        for spec in specs:
            registry.register(spec.tenant_id,
                              workload.rulesets[spec.tenant_id],
                              algorithm=spec.algorithm, binth=spec.binth)
        return workload, registry

    def test_serves_every_request_exactly_once(self, scenario):
        workload, registry = scenario
        service = ClassificationService(registry, BatchPolicy(max_batch=32))
        report = service.serve(workload.requests, updates=workload.updates)
        assert report.num_requests == len(workload.requests)
        assert report.num_updates == len(workload.updates)
        assert report.swaps == len(workload.updates)
        assert report.pps > 0
        assert report.mean_batch_size > 1.0

    def test_differential_exactness_across_swaps(self, scenario):
        workload, registry = scenario
        service = ClassificationService(registry, BatchPolicy(max_batch=32),
                                        record_batches=True)
        report = service.serve(workload.requests, updates=workload.updates)
        post_swap = mismatches = 0
        for batch in report.batches:
            ruleset = registry.slot(batch.tenant_id).ruleset_at(batch.epoch)
            post_swap += len(batch.requests) if batch.epoch else 0
            for request, priority in zip(batch.requests, batch.priorities):
                expected = ruleset.classify(request.packet)
                if (expected.priority if expected else None) != priority:
                    mismatches += 1
        assert post_swap > 0
        assert mismatches == 0

    def test_latency_percentiles_are_ordered(self, scenario):
        workload, registry = scenario
        service = ClassificationService(registry, BatchPolicy(max_batch=32))
        report = service.serve(workload.requests)
        assert report.latency_percentiles[50.0] <= \
            report.latency_percentiles[90.0] <= \
            report.latency_percentiles[99.0]
        assert report.latency_ms(50.0) == \
            pytest.approx(report.latency_percentiles[50.0] * 1e3)

    def test_updates_after_last_request_still_apply(self, serving_ruleset):
        registry = TenantRegistry(background_swaps=False)
        registry.register("alpha", serving_ruleset)
        rule = Rule.from_prefixes(
            src_ip="203.0.113.0/24",
            priority=max(r.priority for r in serving_ruleset) + 1,
        )
        service = ClassificationService(registry, BatchPolicy(max_batch=8))
        requests = [Request("alpha", p, time=i * 1e-4) for i, p in
                    enumerate(serving_ruleset.sample_packets(20, seed=9))]
        late = RuleUpdate(tenant_id="alpha", time=1.0, adds=(rule,))
        report = service.serve(requests, updates=[late])
        assert report.num_requests == 20
        assert registry.slot("alpha").epoch == 1
        assert rule in registry.slot("alpha").ruleset.rules
        # The far-future update must not inflate the tail requests' queueing
        # latency: they are charged their batching deadline, not the one
        # second the stream sat idle before the update arrived.
        assert report.latency_percentiles[99.0] < 0.1

    def test_empty_stream_reports_zeroes(self, serving_ruleset):
        registry = TenantRegistry()
        registry.register("alpha", serving_ruleset)
        report = ClassificationService(registry).serve([])
        assert report.num_requests == 0 and report.num_batches == 0
        assert report.cache_hit_rate == 0.0
        assert report.latency_percentiles[99.0] == 0.0
