"""Tests for DecisionTree: construction state machine, traversal, lookup."""

import pytest

from repro.exceptions import TreeError
from repro.rules import Dimension, Packet, Rule, RuleSet
from repro.tree import (
    CutAction,
    DecisionTree,
    PartitionAction,
    build_with_policy,
)


class TestConstructionStateMachine:
    def test_root_holds_all_rules(self, small_acl_ruleset):
        tree = DecisionTree(small_acl_ruleset, leaf_threshold=4)
        assert tree.root.num_rules == len(small_acl_ruleset)
        assert tree.root.depth == 0

    def test_already_terminal_root(self, tiny_ruleset):
        tree = DecisionTree(tiny_ruleset, leaf_threshold=16)
        assert tree.is_complete()
        assert tree.current_node() is None

    def test_apply_action_advances_dfs(self, small_acl_ruleset):
        tree = DecisionTree(small_acl_ruleset, leaf_threshold=4)
        first = tree.current_node()
        assert first is tree.root
        children = tree.apply_action(CutAction(Dimension.SRC_IP, 4))
        nxt = tree.current_node()
        if nxt is not None:
            # DFS: the next node must be one of the children just created,
            # specifically the first non-terminal one.
            non_terminal = [c for c in children if not c.is_terminal(4)]
            assert nxt is non_terminal[0]

    def test_apply_on_complete_tree_raises(self, tiny_ruleset):
        tree = DecisionTree(tiny_ruleset, leaf_threshold=16)
        with pytest.raises(TreeError):
            tree.apply_action(CutAction(Dimension.SRC_IP, 2))

    def test_invalid_leaf_threshold(self, tiny_ruleset):
        with pytest.raises(TreeError):
            DecisionTree(tiny_ruleset, leaf_threshold=0)

    def test_truncate_marks_remaining_nodes(self, small_acl_ruleset):
        tree = DecisionTree(small_acl_ruleset, leaf_threshold=2)
        tree.apply_action(CutAction(Dimension.SRC_IP, 2))
        tree.truncate()
        assert tree.is_complete()
        assert tree.has_overflowing_leaves()

    def test_depth_truncation_forces_leaves(self, small_fw_ruleset):
        tree = build_with_policy(
            small_fw_ruleset,
            lambda node: CutAction(Dimension.PROTOCOL, 2),
            leaf_threshold=1,
            max_depth=3,
        )
        assert tree.depth() <= 3

    def test_num_actions_taken(self, small_acl_ruleset):
        tree = DecisionTree(small_acl_ruleset, leaf_threshold=4)
        assert tree.num_actions_taken == 0
        tree.apply_action(CutAction(Dimension.SRC_IP, 4))
        assert tree.num_actions_taken == 1


class TestTraversal:
    @pytest.fixture
    def built_tree(self, small_acl_ruleset):
        return build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 8),
            leaf_threshold=8,
            max_depth=20,
        )

    def test_nodes_count_consistency(self, built_tree):
        nodes = list(built_tree.nodes())
        leaves = list(built_tree.leaves())
        internal = list(built_tree.internal_nodes())
        assert len(nodes) == len(leaves) + len(internal)
        assert built_tree.num_nodes() == len(nodes)
        assert built_tree.num_leaves() == len(leaves)

    def test_nodes_per_level_sums_to_node_count(self, built_tree):
        per_level = built_tree.nodes_per_level()
        assert sum(per_level) == built_tree.num_nodes()
        assert per_level[0] == 1

    def test_depth_matches_deepest_leaf(self, built_tree):
        assert built_tree.depth() == max(leaf.depth for leaf in built_tree.leaves())

    def test_max_leaf_rules_respects_threshold(self, built_tree):
        if not built_tree.has_overflowing_leaves():
            assert built_tree.max_leaf_rules() <= built_tree.leaf_threshold


class TestClassification:
    def test_tree_matches_linear_search(self, small_acl_ruleset):
        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.DST_IP, 8),
            leaf_threshold=8,
        )
        for packet in small_acl_ruleset.sample_packets(100, seed=11):
            expected = small_acl_ruleset.classify(packet)
            actual = tree.classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)

    def test_partitioned_tree_matches_linear_search(self, small_fw_ruleset):
        def policy(node):
            if node.depth == 0:
                return PartitionAction(Dimension.SRC_IP, 0.5)
            return CutAction(Dimension.DST_IP, 8)

        # A truncated tree is still an exact classifier; the depth cap keeps
        # this fixed (non-adaptive) policy from exploding on fw-style rules.
        tree = build_with_policy(small_fw_ruleset, policy, leaf_threshold=8,
                                 max_depth=3, max_actions=300)
        for packet in small_fw_ruleset.sample_packets(100, seed=12):
            expected = small_fw_ruleset.classify(packet)
            actual = tree.classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)

    def test_classify_with_depth_counts_levels(self, small_acl_ruleset):
        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 4),
            leaf_threshold=8,
        )
        packet = small_acl_ruleset.sample_packets(1, seed=13)[0]
        _, depth = tree.classify_with_depth(packet)
        assert 1 <= depth <= tree.depth() + 1


class TestBuildWithPolicy:
    def test_policy_error_falls_back_to_leaf(self, small_acl_ruleset):
        # A policy that always partitions will eventually produce an invalid
        # partition (all rules on one side); the driver must not loop forever.
        def bad_policy(node):
            return PartitionAction(Dimension.SRC_IP, 0.0)

        tree = build_with_policy(small_acl_ruleset, bad_policy, leaf_threshold=4,
                                 max_actions=200)
        assert tree.is_complete()

    def test_max_actions_truncates(self, small_fw_ruleset):
        tree = build_with_policy(
            small_fw_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 2),
            leaf_threshold=1,
            max_actions=5,
        )
        assert tree.is_complete()
        assert tree.num_actions_taken <= 5
