"""Tests for the fleet trainer: async rollout collection with bounded
weight staleness, shared-memory weight broadcast, and the shared
multiplexed retrain pool.

Four layers, mirroring the subsystem's contracts:

1. **Broadcast mechanics**: the double-buffered seqlock block round-trips
   weight generations exactly, and a lapped (stale) handle raises instead
   of silently returning unknown weights.
2. **RetrainPool semantics**: round-robin fairness across keys, FIFO
   within a key, queue-depth accounting, exception transparency, and the
   process-local shared-pool registry handing every controller the *same*
   pool (and underlying executor) — the fleet-trainer contract.
3. **Async collection determinism**: ``max_weight_lag=0`` reproduces the
   synchronous trajectory byte-for-byte; ``max_weight_lag=1`` is
   deterministic, never trains on weights older than one generation
   (hypothesis property over seeds and worker counts), and resumes
   exactly through a checkpoint carrying the prefetch round.
4. **Controller lifecycle**: a trace that dies mid-stream cannot leak
   retrain executors (threads joined by the ``finally``), and the
   daemonic process-backend downgrade warns once per process.
"""

from __future__ import annotations

import multiprocessing
import threading
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigError
from repro.executors import (
    RetrainPool,
    RolloutExecutor,
    SerialExecutor,
    TaskHandle,
    ThreadExecutor,
    resolve_pool_backend,
    shared_retrain_pool,
)
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.neurocuts.broadcast import (
    WeightBroadcast,
    WeightHandle,
    read_weights,
    resolve_weights,
    shared_memory_available,
)
from repro.serve import (
    LoadAwareRebalancePolicy,
    RetrainController,
    RetrainPolicy,
    ShardTenant,
    TenantRegistry,
    serve_rebalancing,
)
from repro.rules import Rule
from repro.workloads import (
    ChurnConfig,
    FlowTraceConfig,
    build_workload,
    make_tenant_specs,
)


def _history_dicts(result):
    """Iteration stats without the timing field (never reproducible)."""
    return [
        {k: v for k, v in stats.as_dict().items() if k != "wall_time_s"}
        for stats in result.history
    ]


def _fleet_config(**overrides):
    defaults = dict(
        hidden_sizes=(8, 8),
        max_timesteps_total=600,
        timesteps_per_batch=200,
        max_timesteps_per_rollout=100,
        leaf_threshold=8,
        seed=11,
    )
    defaults.update(overrides)
    return NeuroCutsConfig.fast_test_config(**defaults)


def _fresh_rules(ruleset, count, tag="fleet"):
    base = max(r.priority for r in ruleset) + 1
    return [
        Rule.from_prefixes(src_ip=f"198.51.{i}.0/24", priority=base + i,
                           name=f"{tag}{i}")
        for i in range(count)
    ]


# --------------------------------------------------------------------------- #
# Shared-memory broadcast mechanics
# --------------------------------------------------------------------------- #


@pytest.mark.skipif(not shared_memory_available(),
                    reason="multiprocessing.shared_memory unavailable")
class TestWeightBroadcast:
    def test_publish_read_round_trip_both_slots(self):
        rng = np.random.default_rng(3)
        with WeightBroadcast(capacity=64) as broadcast:
            for generation in range(4):  # exercises slot 0 and slot 1 twice
                flat = rng.standard_normal(64)
                handle = broadcast.publish(flat, generation=generation)
                assert handle.generation == generation
                assert handle.length == 64
                np.testing.assert_array_equal(read_weights(handle), flat)

    def test_short_vector_round_trips_by_length(self):
        with WeightBroadcast(capacity=32) as broadcast:
            flat = np.arange(5, dtype=np.float64)
            handle = broadcast.publish(flat, generation=0)
            np.testing.assert_array_equal(read_weights(handle), flat)

    def test_lapped_handle_raises_instead_of_returning_unknown_weights(self):
        with WeightBroadcast(capacity=8) as broadcast:
            stale = broadcast.publish(np.zeros(8), generation=0)
            # Generation 2 reuses slot 0 (2 % 2 == 0): the staleness bound
            # (at most two live generations) is violated for the old handle.
            broadcast.publish(np.ones(8), generation=2)
            with pytest.raises(RuntimeError, match="staleness"):
                read_weights(stale)

    def test_validation_and_idempotent_close(self):
        with pytest.raises(ValueError):
            WeightBroadcast(capacity=0)
        broadcast = WeightBroadcast(capacity=4)
        with pytest.raises(ValueError):
            broadcast.publish(np.zeros(5), generation=0)
        with pytest.raises(ValueError):
            broadcast.publish(np.zeros(4), generation=-1)
        broadcast.close()
        broadcast.close()

    def test_resolve_weights_passthrough_and_handle(self):
        flat = np.arange(6, dtype=np.float64)
        assert resolve_weights(flat) is flat
        with WeightBroadcast(capacity=6) as broadcast:
            handle = broadcast.publish(flat, generation=1)
            assert isinstance(handle, WeightHandle)
            np.testing.assert_array_equal(resolve_weights(handle), flat)


# --------------------------------------------------------------------------- #
# RetrainPool: fairness, FIFO, accounting, shared registry
# --------------------------------------------------------------------------- #


class _ManualHandle(TaskHandle):
    """A handle the test completes explicitly (models a running retrain)."""

    def __init__(self, func, item):
        self._func = func
        self._item = item
        self._released = False

    def release(self):
        self._released = True

    def ready(self):
        return self._released

    def result(self):
        assert self._released, "result() before the test released the task"
        return self._func(self._item)


class _ManualExecutor(RolloutExecutor):
    """Records dispatch order; tasks finish only when the test says so."""

    def __init__(self, num_workers=1):
        self.num_workers = num_workers
        self.dispatched = []
        self.handles = []

    def submit(self, func, item):
        handle = _ManualHandle(func, item)
        self.dispatched.append(item)
        self.handles.append(handle)
        return handle


class TestRetrainPool:
    def test_round_robin_across_keys_fifo_within_key(self):
        executor = _ManualExecutor(num_workers=1)
        pool = RetrainPool(executor)
        a1 = pool.submit("a", lambda x: x, "a1")
        a2 = pool.submit("a", lambda x: x, "a2")
        a3 = pool.submit("a", lambda x: x, "a3")
        b1 = pool.submit("b", lambda x: x, "b1")
        assert executor.dispatched == ["a1"]  # capacity 1: rest queued
        assert pool.queue_depth() == 3
        assert pool.submitted == 4

        executor.handles[0].release()
        assert a1.ready()
        # "a" was rotated behind "b" when a2 dispatched, so the noisy
        # tenant's third task waits for the other key's turn.
        assert executor.dispatched == ["a1", "a2"]
        executor.handles[1].release()
        assert a2.ready()
        assert executor.dispatched == ["a1", "a2", "b1"]
        executor.handles[2].release()
        assert b1.ready()
        assert executor.dispatched == ["a1", "a2", "b1", "a3"]
        executor.handles[3].release()
        assert a3.result() == "a3"
        assert b1.result() == "b1"
        assert pool.queue_depth() == 0

    def test_serial_backend_runs_inline_and_stays_deterministic(self):
        pool = RetrainPool(SerialExecutor())
        order = []
        handles = [pool.submit(key, order.append, key)
                   for key in ("a", "b", "a")]
        # Inline dispatch drains the queue at submit time: FIFO, no waiting.
        assert order == ["a", "b", "a"]
        assert all(h.ready() for h in handles)
        assert pool.queue_depth() == 0

    def test_exceptions_surface_through_result_and_pool_survives(self):
        pool = RetrainPool(SerialExecutor())

        def boom(_):
            raise ValueError("retrain failed")

        failed = pool.submit("t0", boom, None)
        assert failed.ready()
        with pytest.raises(ValueError, match="retrain failed"):
            failed.result()
        assert pool.submit("t0", lambda x: x + 1, 1).result() == 2

    def test_shared_pool_registry_is_keyed_by_backend_and_width(self):
        first = shared_retrain_pool(1, backend="serial")
        assert shared_retrain_pool(1, backend="serial") is first
        assert first.executor is shared_retrain_pool(
            1, backend="serial").executor
        assert shared_retrain_pool(2, backend="thread") is not first
        with pytest.raises(ValueError):
            shared_retrain_pool(0)
        with pytest.raises(ValueError):
            shared_retrain_pool(1, backend="bogus")

    def test_resolve_pool_backend_downgrades_in_daemonic_workers(
            self, monkeypatch):
        assert resolve_pool_backend("process") == "process"
        assert resolve_pool_backend("thread") == "thread"
        monkeypatch.setattr(multiprocessing.current_process(), "daemon", True)
        assert resolve_pool_backend("process") == "thread"
        assert resolve_pool_backend("serial") == "serial"


class TestControllersShareOnePool:
    """The tentpole contract: one pool instance, not per-controller pools."""

    @pytest.fixture()
    def shared_policy(self):
        return RetrainPolicy(timesteps=300, max_iterations=1,
                             backend="serial", shared_pool_size=1,
                             quality_gate=False)

    def test_policy_validates_pool_size(self):
        with pytest.raises(ValueError):
            RetrainPolicy(shared_pool_size=0)

    def test_two_controllers_two_registries_one_pool(self, small_acl_ruleset,
                                                     shared_policy):
        registries = [
            TenantRegistry(background_swaps=False,
                           default_retrain_threshold=3)
            for _ in range(2)
        ]
        controllers = []
        for index, registry in enumerate(registries):
            registry.register(f"t{index}", small_acl_ruleset)
            controllers.append(RetrainController(registry, shared_policy))
        c1, c2 = controllers
        # Pool *and* its worker executor are the same objects — retrains
        # across controllers multiplex over one pool, nothing per-controller.
        assert c1.pool is c2.pool
        assert c1.pool.executor is c2.pool.executor
        before = c1.pool.submitted

        for index, (registry, controller) in enumerate(
                zip(registries, controllers)):
            tenant_id = f"t{index}"
            for rule in _fresh_rules(registry.slot(tenant_id).ruleset, 3,
                                     tag=f"pool{index}"):
                registry.apply_update(tenant_id, adds=[rule])
            assert controller.poll_tenant(tenant_id) is True
            assert controller.stats.installed == 1
            assert controller.stats.queued == 1
        assert c1.pool.submitted == before + 2
        # Shared pools outlive any one controller: close() must not tear
        # down the executor other controllers are still multiplexed over.
        c1.close()
        assert c2.pool is shared_retrain_pool(1, backend="serial")
        c2.close()

    def test_queue_depth_gauge_registered_and_settles_to_zero(
            self, small_acl_ruleset, shared_policy):
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=3)
        registry.register("t0", small_acl_ruleset)
        gauge = registry.metrics.gauge("serve.retrain_queue_depth")
        assert gauge.value == 0
        with RetrainController(registry, shared_policy) as controller:
            for rule in _fresh_rules(small_acl_ruleset, 3, tag="gauge"):
                registry.apply_update("t0", adds=[rule])
            assert controller.poll_tenant("t0") is True
        assert gauge.value == 0


# --------------------------------------------------------------------------- #
# Async collection: staleness bound, determinism, exact resume
# --------------------------------------------------------------------------- #


class TestAsyncCollection:
    def test_config_rejects_unsupported_lag(self):
        with pytest.raises(ConfigError):
            _fleet_config(async_collection=True, max_weight_lag=2)

    def test_lag_zero_reproduces_synchronous_history_byte_identically(
            self, small_acl_ruleset):
        with NeuroCutsTrainer(small_acl_ruleset, _fleet_config()) as sync:
            sync_result = sync.train()
            assert sync.collection_lags == [0] * len(sync_result.history)
        config = _fleet_config(async_collection=True, max_weight_lag=0)
        with NeuroCutsTrainer(small_acl_ruleset, config) as trainer:
            result = trainer.train()
            assert trainer.collection_lags == [0] * len(result.history)
        assert _history_dicts(result) == _history_dicts(sync_result)

    def test_lag_one_pipelines_and_is_deterministic(self, small_acl_ruleset):
        config = _fleet_config(async_collection=True, max_weight_lag=1)
        histories = []
        for _ in range(2):
            with NeuroCutsTrainer(small_acl_ruleset, config) as trainer:
                result = trainer.train()
                # First batch is collected cold (lag 0); every later one
                # was submitted on the pre-update snapshot (lag exactly 1).
                assert trainer.collection_lags[0] == 0
                assert trainer.collection_lags[1:] == \
                    [1] * (len(result.history) - 1)
                histories.append(_history_dicts(result))
        assert histories[0] == histories[1]

    def test_split_train_calls_match_one_uninterrupted_run(
            self, small_acl_ruleset):
        config = _fleet_config(async_collection=True, max_weight_lag=1)
        with NeuroCutsTrainer(small_acl_ruleset, config) as whole:
            uninterrupted = whole.train()
        with NeuroCutsTrainer(small_acl_ruleset, config) as split:
            split.train(max_iterations=1)
            # The iteration cap left the pipeline primed: its round was
            # drained into the prefetch so the next call continues exactly.
            assert split._prefetch is not None
            resumed = split.train()
        assert _history_dicts(resumed) == _history_dicts(uninterrupted)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=6),
           num_workers=st.sampled_from([1, 2]))
    def test_property_never_trains_on_weights_older_than_one_generation(
            self, small_acl_ruleset, seed, num_workers):
        config = _fleet_config(
            async_collection=True, max_weight_lag=1, seed=seed,
            num_rollout_workers=num_workers,
            max_timesteps_total=300, timesteps_per_batch=150,
        )
        with NeuroCutsTrainer(small_acl_ruleset, config,
                              rollout_backend="serial") as trainer:
            result = trainer.train()
            lags = list(trainer.collection_lags)
            assert len(lags) == len(result.history)
            assert all(0 <= lag <= 1 for lag in lags)
            assert lags[0] == 0
            # One weight generation per PPO update, stamped explicitly.
            assert trainer._weight_generation == len(result.history)

    def test_exact_resume_through_async_checkpoint(self, small_acl_ruleset,
                                                   tmp_path):
        config = _fleet_config(async_collection=True, max_weight_lag=1)
        with NeuroCutsTrainer(small_acl_ruleset, config) as whole:
            uninterrupted = whole.train()
        path = tmp_path / "async.ckpt"
        with NeuroCutsTrainer(small_acl_ruleset, config) as first:
            first.train(max_iterations=1)
            first.save(path)
            lags_so_far = list(first.collection_lags)
        resumed = NeuroCutsTrainer.restore(path, small_acl_ruleset)
        with resumed:
            # The checkpoint carried the gathered-but-untrained prefetch
            # round plus the generation stamp and lag record.
            assert resumed.config.async_collection is True
            assert resumed._prefetch is not None
            assert resumed.collection_lags == lags_so_far
            final = resumed.train()
        assert _history_dicts(final) == _history_dicts(uninterrupted)
        assert final.timesteps_total == uninterrupted.timesteps_total


# --------------------------------------------------------------------------- #
# Controller lifecycle: no executor leaks, daemonic warn-once
# --------------------------------------------------------------------------- #


class TestControllerLifecycle:
    def test_close_shuts_down_owned_executor_idempotently(
            self, small_acl_ruleset):
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=3)
        registry.register("t0", small_acl_ruleset)
        controller = RetrainController(
            registry, RetrainPolicy(timesteps=300, max_iterations=1,
                                    backend="thread", quality_gate=False))
        executor = controller._executor
        assert isinstance(executor, ThreadExecutor)
        for rule in _fresh_rules(small_acl_ruleset, 3, tag="close"):
            registry.apply_update("t0", adds=[rule])
        controller.poll_tenant("t0")
        assert executor.is_running  # the retrain actually started threads
        controller.drain()
        controller.close()
        assert not executor.is_running
        controller.close()

    def test_mid_trace_exception_does_not_leak_retrain_threads(self):
        """The satellite regression: serve_rebalancing dying mid-stream
        must close every shard's retrain executor (threads joined)."""
        import dataclasses as dc

        threshold = 4
        specs = make_tenant_specs(2, families=("acl1",), num_rules=40,
                                  seed=12)
        workload = build_workload(
            specs,
            FlowTraceConfig(num_packets=1500, num_flows=100, seed=12),
            churn=ChurnConfig.forcing_retrain(threshold, num_tenants=2,
                                              adds_per_event=2,
                                              removes_per_event=0,
                                              window=(0.1, 0.5)),
        )
        # Poison the stream after the churn window: by then each shard's
        # thread-backend retrain executor has started its pool.
        poison = dc.replace(workload.updates[-1], tenant_id="ghost",
                            time=workload.requests[-1].time)
        tenants = [ShardTenant(s.tenant_id, s.algorithm, s.binth)
                   for s in specs]
        before = set(threading.enumerate())
        with pytest.raises(KeyError):
            serve_rebalancing(
                tenants, workload.rulesets, workload.requests,
                updates=list(workload.updates) + [poison],
                num_workers=2, background_swaps=False,
                retrain_threshold=threshold,
                retrain_policy=RetrainPolicy(timesteps=300, max_iterations=1,
                                             backend="thread",
                                             quality_gate=False),
                policy=LoadAwareRebalancePolicy(),
                interval=0.25,
            )
        leaked = set(threading.enumerate()) - before
        assert not leaked, f"retrain threads leaked: {leaked}"


class TestDaemonicDowngradeWarnsOnce:
    def test_warn_once_latch(self, monkeypatch):
        import repro.serve.sharded as sharded

        monkeypatch.setattr(sharded, "_DAEMONIC_DOWNGRADE_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sharded._warn_daemonic_downgrade_once()
            sharded._warn_daemonic_downgrade_once()
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "thread backend" in str(runtime[0].message)

    def test_shared_pool_policies_resolve_silently(self, monkeypatch):
        """Shared-pool policies never hit the per-shard warning branch:
        the pool registry resolves the backend itself, silently."""
        monkeypatch.setattr(multiprocessing.current_process(), "daemon", True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pool = shared_retrain_pool(1, backend="process")
        assert isinstance(pool.executor, ThreadExecutor)
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
