"""Tests for the versioned BENCH_<area>.json schema (`repro.obs.bench`)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import BenchFormatError
from repro.obs import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    bench_filename,
    environment_fingerprint,
    read_bench,
    write_bench,
)


def _record(**overrides):
    base = dict(
        name="unit",
        area="engine",
        config={"seed": 0, "algorithm": "HiCuts"},
        counters={"num_packets": 1000, "mismatches": 0},
        timings={"compiled_pps": 123456.0, "compile_seconds": 0.5},
    )
    base.update(overrides)
    return BenchRecord(**base)


class TestRecord:
    def test_environment_autofilled(self):
        record = _record()
        env = record.environment
        for key in ("python", "numpy", "cpu_count", "platform", "git_sha"):
            assert key in env
        assert env["cpu_count"] >= 1

    def test_fingerprint_standalone_matches_keys(self):
        assert set(environment_fingerprint()) == set(_record().environment)

    def test_git_sha_reports_the_tracking_checkout_only(self, tmp_path):
        import subprocess

        from repro.obs.bench import git_sha

        git = ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        subprocess.run(git + ["init", "-q"], cwd=tmp_path, check=True)
        (tmp_path / "file.txt").write_text("x")
        subprocess.run(git + ["add", "file.txt"], cwd=tmp_path, check=True)
        subprocess.run(git + ["commit", "-qm", "init"], cwd=tmp_path,
                       check=True)
        head = subprocess.run(["git", "rev-parse", "HEAD"], cwd=tmp_path,
                              capture_output=True, text=True,
                              check=True).stdout.strip()
        # An explicit repo_root resolves that repository's HEAD.
        assert git_sha(repo_root=tmp_path) == head
        # Without repo_root the SHA comes from the checkout that *tracks*
        # this package; a source tree run reports one, and whatever repo a
        # merely-nearby untracked copy sits under must not leak through —
        # both resolutions are about repro.obs itself, so they never see
        # the unrelated tmp_path repo's HEAD.
        assert git_sha() != head

    def test_git_sha_none_outside_any_repo(self, tmp_path):
        from repro.obs.bench import git_sha

        assert git_sha(repo_root=tmp_path) is None

    def test_bench_filename(self):
        assert bench_filename("serve") == "BENCH_serve.json"

    def test_json_round_trip_preserves_everything(self):
        record = _record()
        back = BenchRecord.from_json(record.to_json())
        assert back.name == record.name
        assert back.area == record.area
        assert back.config == record.config
        assert back.counters == record.counters
        assert back.timings == record.timings
        assert back.environment == record.environment
        assert back.schema_version == BENCH_SCHEMA_VERSION
        # Equal records serialize to identical bytes (sorted keys).
        assert back.to_json() == record.to_json()

    def test_file_round_trip(self, tmp_path):
        path = write_bench(_record(), tmp_path / "sub" / "BENCH_engine.json")
        assert path.exists()
        back = read_bench(path)
        assert back.counters["num_packets"] == 1000


class TestValidation:
    def test_unknown_schema_version_rejected(self):
        data = json.loads(_record().to_json())
        data["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(BenchFormatError, match="schema version"):
            BenchRecord.from_dict(data)

    def test_missing_version_rejected(self):
        data = json.loads(_record().to_json())
        del data["schema_version"]
        with pytest.raises(BenchFormatError, match="schema version"):
            BenchRecord.from_dict(data)

    def test_missing_field_rejected(self):
        data = json.loads(_record().to_json())
        del data["counters"]
        with pytest.raises(BenchFormatError, match="counters"):
            BenchRecord.from_dict(data)

    def test_wrong_field_type_rejected(self):
        data = json.loads(_record().to_json())
        data["timings"] = [1, 2, 3]
        with pytest.raises(BenchFormatError, match="timings"):
            BenchRecord.from_dict(data)

    def test_non_numeric_metric_rejected(self):
        data = json.loads(_record().to_json())
        data["counters"]["num_packets"] = "1000"
        with pytest.raises(BenchFormatError, match="num_packets"):
            BenchRecord.from_dict(data)

    def test_bool_metric_rejected(self):
        data = json.loads(_record().to_json())
        data["timings"]["compiled_pps"] = True
        with pytest.raises(BenchFormatError, match="compiled_pps"):
            BenchRecord.from_dict(data)

    def test_not_an_object_rejected(self):
        with pytest.raises(BenchFormatError, match="JSON object"):
            BenchRecord.from_json("[1, 2]")

    def test_invalid_json_rejected(self):
        with pytest.raises(BenchFormatError, match="not valid JSON"):
            BenchRecord.from_json("{nope")

    def test_unreadable_path_rejected(self, tmp_path):
        with pytest.raises(BenchFormatError, match="cannot read"):
            read_bench(tmp_path / "missing.json")

    def test_source_named_in_errors(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema_version": 99}', encoding="utf-8")
        with pytest.raises(BenchFormatError, match="BENCH_bad.json"):
            read_bench(path)
