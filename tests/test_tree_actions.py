"""Tests for tree action types."""

import pytest

from repro.exceptions import InvalidActionError
from repro.rules import Dimension
from repro.tree import (
    CUT_SIZES,
    PARTITION_LEVELS,
    CutAction,
    EffiCutsPartitionAction,
    MultiCutAction,
    PartitionAction,
    SplitAction,
    is_cut,
    is_partition,
)


class TestActionTypes:
    def test_cut_sizes_match_paper(self):
        assert CUT_SIZES == (2, 4, 8, 16, 32)

    def test_partition_levels_match_appendix(self):
        assert PARTITION_LEVELS == (0.0, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0)

    def test_cut_requires_two_children(self):
        with pytest.raises(InvalidActionError):
            CutAction(dimension=Dimension.SRC_IP, num_cuts=1)

    def test_multicut_duplicate_dims_rejected(self):
        with pytest.raises(InvalidActionError):
            MultiCutAction(cuts=((Dimension.SRC_IP, 2), (Dimension.SRC_IP, 4)))

    def test_multicut_child_count(self):
        action = MultiCutAction(cuts=((Dimension.SRC_IP, 4), (Dimension.DST_IP, 8)))
        assert action.total_children == 32

    def test_multicut_needs_at_least_one_dim(self):
        with pytest.raises(InvalidActionError):
            MultiCutAction(cuts=())

    def test_partition_threshold_bounds(self):
        with pytest.raises(InvalidActionError):
            PartitionAction(dimension=Dimension.SRC_IP, threshold=1.5)

    def test_classification_predicates(self):
        cut = CutAction(dimension=Dimension.SRC_IP, num_cuts=2)
        split = SplitAction(dimension=Dimension.DST_IP, split_point=100)
        partition = PartitionAction(dimension=Dimension.SRC_IP, threshold=0.5)
        efficuts = EffiCutsPartitionAction()
        assert is_cut(cut) and is_cut(split) and not is_partition(cut)
        assert is_partition(partition) and is_partition(efficuts)
        assert not is_cut(partition)

    def test_describe_strings(self):
        assert "SRC_IP" in CutAction(Dimension.SRC_IP, 4).describe()
        assert "partition" in PartitionAction(Dimension.DST_IP, 0.5).describe()
        assert "efficuts" in EffiCutsPartitionAction().describe()
        assert "split" in SplitAction(Dimension.SRC_PORT, 80).describe()
        multi = MultiCutAction(cuts=((Dimension.SRC_IP, 2),))
        assert "SRC_IP" in multi.describe()
