"""Tests for the adaptive serving loop: retrain-on-churn + tenant sharding.

Covers the `needs_retraining()` threshold edges, tree adoption with churn
replay, the RetrainController state machine on every executor backend, the
churn schedules sized to force retrains, and telemetry merging across
sharded serving workers.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.baselines import EffiCutsBuilder, HiCutsBuilder
from repro.classbench import generate_classifier
from repro.neurocuts import (
    IncrementalUpdater,
    RetrainRequest,
    default_retrain_config,
    run_retrain,
)
from repro.rules import Rule
from repro.serve import (
    ClassificationService,
    BatchPolicy,
    EngineSlot,
    RetrainController,
    RetrainPolicy,
    ShardTenant,
    TenantRegistry,
    merge_reports,
    serve_sharded,
    shard_tenants,
)
from repro.workloads import (
    ChurnConfig,
    FlowTraceConfig,
    build_workload,
    make_tenant_specs,
)


@pytest.fixture(scope="module")
def small_ruleset():
    return generate_classifier("acl1", 50, seed=7)


def _fresh_rules(ruleset, count, tag="edge"):
    base = max(r.priority for r in ruleset) + 1
    return [
        Rule.from_prefixes(src_ip=f"198.51.{i}.0/24", priority=base + i,
                           name=f"{tag}{i}")
        for i in range(count)
    ]


class TestRetrainThresholdEdges:
    """`needs_retraining()` must fire exactly at the threshold, not around it."""

    def test_updater_fires_exactly_at_threshold(self, small_ruleset):
        tree = HiCutsBuilder(binth=8).build(small_ruleset).trees[0]
        updater = IncrementalUpdater(tree, retrain_threshold=3)
        rules = _fresh_rules(small_ruleset, 3)
        for i, rule in enumerate(rules):
            assert not updater.needs_retraining(), \
                f"fired after {i} updates (threshold 3)"
            updater.add_rule(rule)
        assert updater.needs_retraining()

    def test_adds_and_removes_both_count(self, small_ruleset):
        tree = HiCutsBuilder(binth=8).build(small_ruleset).trees[0]
        updater = IncrementalUpdater(tree, retrain_threshold=2)
        victim = next(r for r in small_ruleset.rules
                      if r.num_wildcard_dims() < 5)
        updater.remove_rule(victim)
        assert not updater.needs_retraining()
        updater.add_rule(_fresh_rules(small_ruleset, 1)[0])
        assert updater.needs_retraining()

    def test_threshold_one_fires_on_first_update(self, small_ruleset):
        classifier = HiCutsBuilder(binth=8).build(small_ruleset)
        slot = EngineSlot("t", classifier, background=False,
                          retrain_threshold=1)
        assert not slot.needs_retraining()
        slot.apply_update(adds=_fresh_rules(small_ruleset, 1))
        assert slot.needs_retraining()

    def test_slot_tracks_threshold_through_registry(self, small_ruleset):
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=4)
        slot = registry.register("a", small_ruleset)
        override = registry.register("b", small_ruleset.with_default_rule(),
                                     retrain_threshold=2)
        assert slot.retrain_threshold == 4
        assert override.retrain_threshold == 2
        rules = _fresh_rules(small_ruleset, 4)
        for rule in rules[:3]:
            registry.apply_update("a", adds=[rule])
        assert not slot.needs_retraining()
        assert slot.updates_since_adoption == 3
        registry.apply_update("a", adds=[rules[3]])
        assert slot.needs_retraining()
        assert registry.telemetry()["a"]["retrain"]["needs_retraining"]


class TestAdoptClassifier:
    def test_adoption_swaps_trees_and_resets_counters(self, small_ruleset):
        classifier = HiCutsBuilder(binth=8).build(small_ruleset)
        slot = EngineSlot("t", classifier, background=False,
                          retrain_threshold=2)
        slot.apply_update(adds=_fresh_rules(small_ruleset, 2))
        assert slot.needs_retraining()
        epoch_before = slot.epoch
        replacement = EffiCutsBuilder(binth=8).build(slot.ruleset)
        slot.adopt_classifier(replacement)
        assert slot.classifier is replacement
        assert slot.epoch == epoch_before + 1
        assert not slot.needs_retraining()
        assert slot.updates_since_adoption == 0
        # The adopted epoch's snapshot is the latest ruleset.
        assert slot.ruleset_at(slot.epoch) == slot.ruleset

    def test_adoption_replays_churn_that_raced_the_retrain(self,
                                                           small_ruleset):
        classifier = HiCutsBuilder(binth=8).build(small_ruleset)
        slot = EngineSlot("t", classifier, background=False)
        base = slot.ruleset  # snapshot a retrain would train against
        replacement = HiCutsBuilder(binth=8).build(base)
        # Churn lands while the "retrain" runs: an add and a remove.
        added = _fresh_rules(small_ruleset, 1, tag="raced")
        victim = next(r for r in base.rules if r.num_wildcard_dims() < 5)
        slot.apply_update(adds=added, removes=[victim])
        slot.adopt_classifier(replacement, base_ruleset=base)
        post = slot.ruleset_at(slot.epoch)
        assert added[0] in post.rules and victim not in post.rules
        # The raced updates count toward the *next* retrain.
        assert slot.updates_since_adoption == 2
        # Differential exactness of the adopted engine on the replayed set.
        rng = random.Random(3)
        packet = post.sample_matching_packet(added[0], rng)
        match = slot.engine().classify(packet)
        assert match is not None and match.priority == added[0].priority
        for packet in post.sample_packets(200, seed=11):
            expected = post.classify(packet)
            actual = slot.engine().classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)


class TestRetrainService:
    def test_run_retrain_returns_picklable_response(self, small_ruleset):
        request = RetrainRequest(
            tenant_id="t0",
            ruleset=small_ruleset,
            config=default_retrain_config(timesteps=300, seed=1),
            max_iterations=1,
        )
        response = run_retrain(request)
        assert response.tenant_id == "t0"
        assert response.timesteps_total > 0
        classifier = response.classifier(small_ruleset)
        checked, mismatches = classifier.validate(
            small_ruleset.sample_packets(150, seed=5))
        assert checked == 150 and mismatches == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetrainPolicy(timesteps=0)
        with pytest.raises(ValueError):
            RetrainPolicy(backend="fork")
        with pytest.raises(ValueError):
            RetrainPolicy(rollout_workers=0)


class TestRetrainController:
    def _registry(self, ruleset, threshold=3):
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=threshold)
        registry.register("t0", ruleset)
        return registry

    def test_serial_backend_full_cycle(self, small_ruleset):
        registry = self._registry(small_ruleset)
        slot = registry.slot("t0")
        # quality_gate=False: this test exercises the adoption *mechanics*
        # (launch -> install -> counter reset), not the gate's verdict on
        # a short-budget retrain.  The gate has its own tests below.
        policy = RetrainPolicy(timesteps=300, max_iterations=1,
                               backend="serial", quality_gate=False)
        with RetrainController(registry, policy) as controller:
            for rule in _fresh_rules(small_ruleset, 3, tag="cycle"):
                registry.apply_update("t0", adds=[rule])
            assert slot.needs_retraining()
            assert controller.poll_tenant("t0") is True
            assert controller.stats.triggered == 1
            assert controller.stats.installed == 1
            assert not slot.needs_retraining()
            post = slot.ruleset_at(slot.epoch)
            for packet in post.sample_packets(150, seed=2):
                expected = post.classify(packet)
                actual = slot.engine().classify(packet)
                assert (actual.priority if actual else None) == \
                    (expected.priority if expected else None)

    def test_thread_backend_drain_lands_inflight_job(self, small_ruleset):
        registry = self._registry(small_ruleset)
        slot = registry.slot("t0")
        policy = RetrainPolicy(timesteps=300, max_iterations=1,
                               backend="thread", quality_gate=False)
        with RetrainController(registry, policy) as controller:
            for rule in _fresh_rules(small_ruleset, 3, tag="bg"):
                registry.apply_update("t0", adds=[rule])
            controller.poll_tenant("t0")
            assert controller.stats.triggered == 1
            assert controller.in_flight == ["t0"] or \
                controller.stats.installed == 1
            landed = controller.drain()
            assert controller.stats.installed == 1 or landed == ["t0"]
            assert not slot.needs_retraining()

    def test_deregistered_tenant_discards_finished_job(self, small_ruleset):
        registry = self._registry(small_ruleset)
        policy = RetrainPolicy(timesteps=300, max_iterations=1,
                               backend="thread")
        with RetrainController(registry, policy) as controller:
            for rule in _fresh_rules(small_ruleset, 3, tag="gone"):
                registry.apply_update("t0", adds=[rule])
            controller.poll_tenant("t0")
            registry.deregister("t0")
            controller.drain()
            assert controller.stats.discarded == 1
            assert controller.stats.installed == 0

    def test_no_retrigger_while_job_in_flight(self, small_ruleset):
        registry = self._registry(small_ruleset)
        policy = RetrainPolicy(timesteps=300, max_iterations=1,
                               backend="thread")
        with RetrainController(registry, policy) as controller:
            for rule in _fresh_rules(small_ruleset, 6, tag="dup"):
                registry.apply_update("t0", adds=[rule])
            controller.poll_tenant("t0")
            # The slot still reports needs_retraining, but the in-flight
            # job must not be duplicated by further polls.
            controller.poll_tenant("t0")
            assert controller.stats.triggered == 1
            controller.drain()


class TestRetrainQualityGate:
    """A retrained tree is only adopted when it *strictly beats* the
    incrementally-patched incumbent under the paper's time/space objective.

    The objective function is monkeypatched with a scripted sequence so
    each verdict edge (beat / tie / lose) is exercised deterministically —
    ``_install`` scores the candidate first, then the incumbent.
    """

    @staticmethod
    def _scripted_objective(*values):
        scores = iter(values)
        return lambda stats, coeff: next(scores)

    def _gated_cycle(self, ruleset, monkeypatch, candidate_score,
                     incumbent_score):
        import repro.serve.controller as controller_module

        # The controller scores the incumbent at launch (the snapshot the
        # gate compares against) and the candidate at install, in that order.
        monkeypatch.setattr(
            controller_module, "classifier_objective",
            self._scripted_objective(incumbent_score, candidate_score))
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=3)
        slot = registry.register("t0", ruleset)
        policy = RetrainPolicy(timesteps=300, max_iterations=1,
                               backend="serial")
        controller = RetrainController(registry, policy)
        for rule in _fresh_rules(ruleset, 3, tag="gate"):
            registry.apply_update("t0", adds=[rule])
        landed = controller.poll_tenant("t0")
        controller.close()
        return registry, slot, controller, landed

    def test_strictly_better_candidate_is_adopted(self, small_ruleset,
                                                  monkeypatch):
        registry, slot, controller, landed = self._gated_cycle(
            small_ruleset, monkeypatch,
            candidate_score=0.5, incumbent_score=1.0)
        assert landed is True
        assert controller.stats.installed == 1
        assert controller.stats.rejected == 0
        # 3 update swaps + 1 adoption swap.
        assert slot.swap_stats.swaps == 4
        assert registry.metrics.counter("serve.retrains_rejected").value == 0

    def test_tie_is_rejected(self, small_ruleset, monkeypatch):
        """A tie means the retrain bought nothing: keep the incumbent."""
        registry, slot, controller, landed = self._gated_cycle(
            small_ruleset, monkeypatch,
            candidate_score=1.0, incumbent_score=1.0)
        assert landed is False
        assert controller.stats.installed == 0
        assert controller.stats.rejected == 1
        # No adoption swap: only the 3 update swaps happened.
        assert slot.swap_stats.swaps == 3
        assert registry.metrics.counter("serve.retrains_rejected").value == 1

    def test_worse_candidate_is_rejected_and_incumbent_serves(
            self, small_ruleset, monkeypatch):
        registry, slot, controller, landed = self._gated_cycle(
            small_ruleset, monkeypatch,
            candidate_score=2.0, incumbent_score=1.0)
        assert landed is False
        assert controller.stats.rejected == 1
        epoch = slot.epoch
        # The incumbent still answers exactly for its latest ruleset.
        post = slot.ruleset_at(epoch)
        for packet in post.sample_packets(100, seed=13):
            expected = post.classify(packet)
            actual = slot.engine().classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)

    def test_rejection_resets_drift_and_does_not_relaunch(self,
                                                          small_ruleset,
                                                          monkeypatch):
        """note_retrain_rejected() spends the trigger evidence: the very
        next poll must not relaunch against the refuted counters."""
        registry, slot, controller, landed = self._gated_cycle(
            small_ruleset, monkeypatch,
            candidate_score=2.0, incumbent_score=1.0)
        assert landed is False
        assert not slot.needs_retraining()
        assert slot.updates_since_adoption == 0
        assert controller.poll_tenant("t0") is False
        assert controller.stats.triggered == 1
        # Fresh drift re-arms the loop as usual.
        for rule in _fresh_rules(small_ruleset, 3, tag="rearm"):
            registry.apply_update("t0", adds=[rule])
        assert slot.needs_retraining()

    def test_objective_matches_cost_model(self, small_ruleset):
        from repro.serve.controller import classifier_objective

        classifier = HiCutsBuilder(binth=8).build(small_ruleset)
        stats = classifier.stats()
        assert classifier_objective(stats, 1.0) == \
            pytest.approx(stats.classification_time)
        assert classifier_objective(stats, 0.0) == \
            pytest.approx(stats.bytes_per_rule)
        assert classifier_objective(stats, 0.5) == pytest.approx(
            0.5 * stats.classification_time + 0.5 * stats.bytes_per_rule)

    def test_serve_report_swap_invariant_after_rejection(self, monkeypatch):
        """End to end: every rejection is counted, nothing swaps for it,
        and ``swaps == num_updates + retrains_installed`` still holds."""
        import repro.serve.controller as controller_module

        calls = {"n": 0}

        def losing_objective(stats, coeff):
            # Incumbent scored first (at launch, odd calls); the candidate
            # (scored at install, even calls) always loses to it.
            calls["n"] += 1
            return 1.0 if calls["n"] % 2 == 1 else 2.0

        monkeypatch.setattr(controller_module, "classifier_objective",
                            losing_objective)
        threshold = 4
        specs = make_tenant_specs(1, families=("acl1",), num_rules=40,
                                  seed=8)
        churn = ChurnConfig.forcing_retrain(threshold, num_tenants=1,
                                            adds_per_event=2,
                                            removes_per_event=0)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=1200, num_flows=100, seed=8),
            churn=churn,
        )
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=threshold)
        registry.register(specs[0].tenant_id,
                          workload.rulesets[specs[0].tenant_id])
        controller = RetrainController(
            registry,
            RetrainPolicy(timesteps=300, max_iterations=1, backend="serial"),
        )
        service = ClassificationService(
            registry, BatchPolicy(max_batch=32), record_batches=True,
            retrain_controller=controller,
        )
        report = service.serve(workload.requests, updates=workload.updates)
        controller.close()
        assert report.retrains_triggered >= 1
        assert report.retrains_rejected == report.retrains_triggered
        assert report.retrains_installed == 0
        assert report.swaps == report.num_updates + report.retrains_installed
        # Decisions stay exact: the incumbent kept serving every epoch.
        slot = registry.slot(specs[0].tenant_id)
        mismatches = 0
        for batch in report.batches:
            ruleset = slot.ruleset_at(batch.epoch)
            for request, priority in zip(batch.requests, batch.priorities):
                expected = ruleset.classify(request.packet)
                if (expected.priority if expected else None) != priority:
                    mismatches += 1
        assert mismatches == 0


class TestForcingRetrainChurn:
    def test_schedule_arithmetic(self):
        churn = ChurnConfig.forcing_retrain(12, num_tenants=3,
                                            adds_per_event=4,
                                            removes_per_event=2)
        # ceil(12 / 6) = 2 events per tenant, 3 tenants.
        assert churn.num_events == 6
        assert churn.adds_per_event == 4 and churn.removes_per_event == 2

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ChurnConfig.forcing_retrain(0, num_tenants=1)
        with pytest.raises(ValueError):
            ChurnConfig.forcing_retrain(5, num_tenants=0)
        with pytest.raises(ValueError):
            ChurnConfig.forcing_retrain(5, num_tenants=1, adds_per_event=0,
                                        removes_per_event=0)

    def test_schedule_actually_crosses_threshold(self):
        threshold = 6
        specs = make_tenant_specs(2, families=("acl1",), num_rules=40, seed=3)
        churn = ChurnConfig.forcing_retrain(threshold, num_tenants=2,
                                            adds_per_event=2,
                                            removes_per_event=1)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=400, num_flows=60, seed=3),
            churn=churn,
        )
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=threshold)
        for spec in specs:
            registry.register(spec.tenant_id,
                              workload.rulesets[spec.tenant_id])
        for update in workload.updates:
            registry.apply_update(update.tenant_id, adds=update.adds,
                                  removes=update.removes)
        for spec in specs:
            assert registry.slot(spec.tenant_id).needs_retraining(), \
                f"{spec.tenant_id} never crossed the retrain threshold"


def _build_scenario(num_tenants=3, num_packets=2000, churn_events=2, seed=4):
    specs = make_tenant_specs(num_tenants, families=("acl1", "ipc1"),
                              num_rules=50, seed=seed)
    churn = ChurnConfig(num_events=churn_events, adds_per_event=2,
                        removes_per_event=1) if churn_events else None
    workload = build_workload(
        specs, FlowTraceConfig(num_packets=num_packets, num_flows=150,
                               seed=seed),
        churn=churn,
    )
    tenants = [ShardTenant(s.tenant_id, s.algorithm, s.binth) for s in specs]
    return specs, workload, tenants


class TestShardPlan:
    def test_round_robin_assignment(self):
        plan = shard_tenants(["a", "b", "c", "d", "e"], 2)
        assert plan.assignments == (("a", "c", "e"), ("b", "d"))
        assert plan.shard_of("d") == 1
        with pytest.raises(KeyError):
            plan.shard_of("zz")

    def test_more_shards_than_tenants_leaves_empty_shards(self):
        plan = shard_tenants(["a"], 3)
        assert plan.assignments == (("a",), (), ())

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_tenants(["a"], 0)


class TestShardedServing:
    def test_merged_telemetry_equals_shard_sums(self):
        _, workload, tenants = _build_scenario()
        outcomes, merged, plan = serve_sharded(
            tenants, workload.rulesets, workload.requests, workload.updates,
            num_workers=2, backend="serial", record_batches=True,
        )
        assert plan.num_shards == 2 and len(outcomes) == 2
        # Every request routed to exactly one shard and served there.
        assert merged.num_requests == len(workload.requests)
        assert merged.num_requests == \
            sum(o.report.num_requests for o in outcomes)
        for counter in ("num_batches", "num_updates", "cache_hits",
                        "cache_evictions", "swaps", "swap_stalls"):
            assert getattr(merged, counter) == \
                sum(getattr(o.report, counter) for o in outcomes), counter
        # Per-tenant entries survive the merge, disjointly.
        tenant_ids = [t.tenant_id for t in tenants]
        assert sorted(merged.per_tenant) == sorted(tenant_ids)
        # Merged percentiles are exact over the concatenated latencies.
        import numpy as np
        all_lat = np.concatenate([o.report.latencies for o in outcomes])
        assert merged.latency_percentiles[99.0] == \
            pytest.approx(float(np.percentile(all_lat, 99.0)))
        assert merged.latency_percentiles[50.0] <= \
            merged.latency_percentiles[90.0] <= \
            merged.latency_percentiles[99.0]

    def test_sharded_exactness_across_hot_swaps(self):
        from repro.harness.serving import run_serving

        result = run_serving(num_tenants=3, families=("acl1",),
                             num_rules=50, num_packets=2000, num_flows=150,
                             churn_events=2, serving_workers=2,
                             serving_backend="serial",
                             record_batches=True, seed=5)
        exactness = result.verify_exactness()
        assert exactness.num_checked == result.report.num_requests
        assert exactness.num_mismatches == 0
        assert result.report.swaps >= 1
        assert result.num_shards == 2
        assert len(result.shard_rows()) == 2

    def test_thread_backend_matches_serial_counts(self):
        _, workload, tenants = _build_scenario(seed=6)
        _, serial_merged, _ = serve_sharded(
            tenants, workload.rulesets, workload.requests, workload.updates,
            num_workers=2, backend="serial",
        )
        _, thread_merged, _ = serve_sharded(
            tenants, workload.rulesets, workload.requests, workload.updates,
            num_workers=2, backend="thread",
        )
        assert thread_merged.num_requests == serial_merged.num_requests
        assert thread_merged.num_batches == serial_merged.num_batches
        assert thread_merged.cache_hits == serial_merged.cache_hits
        assert thread_merged.swaps == serial_merged.swaps

    def test_empty_shards_are_skipped(self):
        _, workload, tenants = _build_scenario(num_tenants=2,
                                               num_packets=600,
                                               churn_events=0)
        outcomes, merged, plan = serve_sharded(
            tenants, workload.rulesets, workload.requests,
            num_workers=4, backend="serial",
        )
        assert plan.num_shards == 4
        assert len(outcomes) == 2  # two tenants -> two non-empty shards
        assert merged.num_requests == len(workload.requests)

    def test_merge_reports_requires_outcomes_shape(self):
        _, workload, tenants = _build_scenario(num_tenants=2,
                                               num_packets=400,
                                               churn_events=0)
        outcomes, _, _ = serve_sharded(
            tenants, workload.rulesets, workload.requests,
            num_workers=2, backend="serial",
        )
        merged = merge_reports(outcomes, wall_seconds=1.0)
        assert merged.wall_seconds == 1.0
        assert merged.pps == pytest.approx(merged.num_requests / 1.0)


class TestHiCutsFwWarning:
    def test_warns_on_large_fw_hicuts(self):
        from repro.harness.serving import warn_if_hicuts_on_fw

        with pytest.warns(RuntimeWarning, match="EffiCuts"):
            message = warn_if_hicuts_on_fw(("acl1", "fw1"), "HiCuts", 500)
        assert message is not None and "fw1" in message

    def test_silent_when_safe(self):
        import warnings

        from repro.harness.serving import warn_if_hicuts_on_fw

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert warn_if_hicuts_on_fw(("fw1",), "EffiCuts", 500) is None
            assert warn_if_hicuts_on_fw(("acl1",), "HiCuts", 500) is None
            assert warn_if_hicuts_on_fw(("fw1",), "HiCuts", 150) is None


class TestServiceRetrainIntegration:
    def test_serve_triggers_and_installs_retrain(self):
        threshold = 4
        specs = make_tenant_specs(1, families=("acl1",), num_rules=40,
                                  seed=8)
        churn = ChurnConfig.forcing_retrain(threshold, num_tenants=1,
                                            adds_per_event=2,
                                            removes_per_event=0)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=1200, num_flows=100, seed=8),
            churn=churn,
        )
        registry = TenantRegistry(background_swaps=False,
                                  default_retrain_threshold=threshold)
        registry.register(specs[0].tenant_id,
                          workload.rulesets[specs[0].tenant_id])
        controller = RetrainController(
            registry,
            RetrainPolicy(timesteps=300, max_iterations=1, backend="serial",
                          quality_gate=False),
        )
        service = ClassificationService(
            registry, BatchPolicy(max_batch=32), record_batches=True,
            retrain_controller=controller,
        )
        report = service.serve(workload.requests, updates=workload.updates)
        controller.close()
        assert report.retrains_triggered >= 1
        assert report.retrains_installed == report.retrains_triggered
        assert report.retrains_rejected == 0
        assert report.num_requests == len(workload.requests)
        # Exactness across the retrain adoption.
        slot = registry.slot(specs[0].tenant_id)
        mismatches = 0
        for batch in report.batches:
            ruleset = slot.ruleset_at(batch.epoch)
            for request, priority in zip(batch.requests, batch.priorities):
                expected = ruleset.classify(request.packet)
                if (expected.priority if expected else None) != priority:
                    mismatches += 1
        assert mismatches == 0


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="process-shard smoke needs >= 2 CPUs to be "
                           "worth the spawn cost")
def test_process_backend_shards_really_run_in_processes():
    _, workload, tenants = _build_scenario(num_tenants=2, num_packets=600,
                                           churn_events=0)
    outcomes, merged, _ = serve_sharded(
        tenants, workload.rulesets, workload.requests,
        num_workers=2, backend="process",
    )
    assert merged.num_requests == len(workload.requests)
    assert len(outcomes) == 2
