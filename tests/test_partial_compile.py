"""Partial recompilation: provenance, O(delta) rebuilds, slot metrics.

The fast path (:func:`repro.engine.partial_compile_classifier`) must only
ever *miss* — every fallback returns exactly what a full
:func:`compile_classifier` would — so these tests pin both sides: the reuse
accounting (which flat trees were carried by reference, how many node rows
were rebuilt) and the answers (partial output equals a fresh compile equals
linear search).
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import EffiCutsBuilder, HiCutsBuilder
from repro.classbench import generate_classifier
from repro.engine import (
    CompiledClassifier,
    compile_classifier,
    packets_to_array,
    partial_compile_classifier,
)
from repro.neurocuts import IncrementalUpdater
from repro.obs.metrics import MetricsRegistry
from repro.rules import Rule
from repro.serve import EngineSlot


def _fresh_rule(ruleset, name="hot"):
    """A rule strictly above every live priority (unambiguous tie-break)."""
    priority = max(r.priority for r in ruleset.rules) + 1
    return Rule.from_prefixes(src_ip="198.51.100.0/24", protocol=6,
                              priority=priority, name=name)


def _victim(ruleset):
    return next(r for r in ruleset.rules if r.num_wildcard_dims() < 5)


def _dirty_roots(provenance, rules):
    """The same delta-to-subtree mapping EngineSlot computes."""
    dirty = set()
    for rule in rules:
        for tree_roots in provenance.roots:
            if tree_roots is None:
                continue
            for root in tree_roots:
                if rule in root.rules:
                    dirty.add(id(root))
    return dirty


def _apply_delta(classifier, adds=(), removes=()):
    """Mutate the trees and ruleset the way the serving layer does."""
    updaters = [IncrementalUpdater(tree) for tree in classifier.trees]
    previous_provenance_rules = removes
    dirty = None  # computed by the caller against provenance
    for rule in removes:
        for updater in updaters:
            updater.remove_rule(rule)
    for rule in adds:
        updaters[0].add_rule(rule)
    ruleset = classifier.ruleset
    if removes:
        ruleset = ruleset.with_rules_removed(removes)
    if adds:
        ruleset = ruleset.with_rules_added(adds)
    classifier.ruleset = ruleset


def _priorities(matches):
    return [m.priority if m else None for m in matches]


@pytest.fixture()
def hicuts():
    ruleset = generate_classifier("acl1", 120, seed=3)
    return HiCutsBuilder(binth=8).build(ruleset)


@pytest.fixture()
def efficuts():
    ruleset = generate_classifier("fw1", 150, seed=0)
    return EffiCutsBuilder(binth=8).build(ruleset)


class TestProvenance:
    def test_compile_attaches_provenance(self, efficuts):
        compiled = compile_classifier(efficuts)
        prov = compiled.provenance
        assert prov is not None
        assert prov.trees == tuple(efficuts.trees)
        assert prov.versions == tuple(t.version for t in efficuts.trees)
        # Spans tile the subtree list tree-for-tree.
        assert prov.spans[0][0] == 0
        assert prov.spans[-1][1] == compiled.num_subtrees
        for (_, end), (start, _) in zip(prov.spans, prov.spans[1:]):
            assert end == start
        # The rule-slot map IS the index into the shared rule list.
        for rule, slot in prov.rule_slot.items():
            assert compiled.rules[slot] == rule

    def test_hand_assembled_engine_has_no_provenance(self, hicuts):
        compiled = compile_classifier(hicuts)
        bare = CompiledClassifier(subtrees=compiled.subtrees,
                                  rules=compiled.rules)
        assert bare.provenance is None


class TestPartialCompile:
    def test_noop_delta_reuses_every_subtree(self, efficuts):
        previous = compile_classifier(efficuts)
        result = partial_compile_classifier(efficuts, previous,
                                            dirty_roots=set())
        assert not result.full_rebuild
        assert result.trees_recompiled == 0
        assert result.nodes_recompiled == 0
        assert result.subtrees_reused == previous.num_subtrees
        for new, old in zip(result.classifier.subtrees, previous.subtrees):
            assert new is old
        assert result.classifier.rules is previous.rules

    def test_delta_rebuilds_only_what_it_touched(self, efficuts):
        ruleset = efficuts.ruleset
        previous = compile_classifier(efficuts)
        removes = [_victim(ruleset)]
        adds = [_fresh_rule(ruleset)]
        dirty = _dirty_roots(previous.provenance, removes)
        _apply_delta(efficuts, adds=adds, removes=removes)
        dirty |= _dirty_roots(previous.provenance, adds)

        result = partial_compile_classifier(efficuts, previous,
                                            dirty_roots=dirty)
        assert not result.full_rebuild
        assert result.trees_recompiled >= 1
        assert 0 < result.nodes_recompiled <= result.classifier.num_nodes
        # Only the flagged subtrees were re-flattened; the other categories
        # of the partitioned classifier were carried by reference even
        # though the shared ruleset bumped every tree's version.
        assert result.subtrees_reused == \
            result.classifier.num_subtrees - len(dirty)
        assert result.subtrees_reused > 0
        # The rule list is shared storage, patched append-only.
        assert result.classifier.rules is previous.rules
        assert adds[0] in result.classifier.rules

        # Answers equal a from-scratch compile AND linear search.
        packets = list(efficuts.ruleset.sample_packets(500, seed=5,
                                                       rule_bias=0.8))
        packets.append(efficuts.ruleset.sample_matching_packet(
            adds[0], random.Random(0)))
        fresh = compile_classifier(efficuts)
        got = _priorities(result.classifier.classify_batch(packets))
        assert got == _priorities(fresh.classify_batch(packets))
        assert got == _priorities(
            [efficuts.ruleset.classify(p) for p in packets])

    def test_missing_dirty_map_rebuilds_changed_trees(self, hicuts):
        previous = compile_classifier(hicuts)
        _apply_delta(hicuts, adds=[_fresh_rule(hicuts.ruleset)])
        result = partial_compile_classifier(hicuts, previous,
                                            dirty_roots=None)
        assert not result.full_rebuild
        assert result.trees_recompiled == 1
        assert result.subtrees_reused == 0
        assert result.nodes_recompiled == result.classifier.num_nodes

    def test_ruleset_only_version_bump_reuses_subtrees(self, efficuts):
        # Removing a rule from a partitioned classifier bumps *every*
        # tree's version (they share the ruleset) but only changes node
        # rule lists where the rule actually lived.  With an authoritative
        # dirty map the untouched trees are reused, and the result is
        # still exact against linear search.
        ruleset = efficuts.ruleset
        previous = compile_classifier(efficuts)
        removes = [_victim(ruleset)]
        dirty = _dirty_roots(previous.provenance, removes)
        assert 0 < len(dirty) < previous.num_subtrees
        _apply_delta(efficuts, removes=removes)
        result = partial_compile_classifier(efficuts, previous,
                                            dirty_roots=dirty)
        assert not result.full_rebuild
        assert result.trees_recompiled == len(dirty)
        assert result.subtrees_reused == previous.num_subtrees - len(dirty)
        packets = efficuts.ruleset.sample_packets(400, seed=3, rule_bias=0.8)
        got = _priorities(result.classifier.classify_batch(packets))
        assert got == _priorities(
            [efficuts.ruleset.classify(p) for p in packets])

    def test_different_trees_force_full_rebuild(self, hicuts):
        previous = compile_classifier(hicuts)
        retrained = HiCutsBuilder(binth=12).build(hicuts.ruleset)
        result = partial_compile_classifier(retrained, previous)
        assert result.full_rebuild
        assert result.classifier.provenance is not None

    def test_no_provenance_forces_full_rebuild(self, hicuts):
        previous = compile_classifier(hicuts)
        bare = CompiledClassifier(subtrees=previous.subtrees,
                                  rules=previous.rules)
        result = partial_compile_classifier(hicuts, bare)
        assert result.full_rebuild

    def test_backend_is_inherited_from_previous(self, hicuts):
        previous = compile_classifier(hicuts, backend="numpy")
        result = partial_compile_classifier(hicuts, previous,
                                            dirty_roots=set())
        assert result.classifier.backend == previous.backend == "numpy"


class TestEngineSlotPartial:
    def _slot(self, classifier, **kwargs):
        metrics = MetricsRegistry()
        slot = EngineSlot("t0", classifier, flow_cache_size=256,
                          background=False, metrics=metrics, **kwargs)
        return slot, metrics

    def test_update_goes_through_partial_recompile(self, hicuts):
        slot, metrics = self._slot(hicuts)
        assert metrics.counters["engine.compiles_full"].value == 1
        victim = _victim(slot.ruleset)
        slot.apply_update(adds=[_fresh_rule(slot.ruleset)],
                          removes=[victim])
        assert metrics.counters["engine.compiles_full"].value == 1
        assert metrics.counters["engine.compiles_partial"].value == 1
        assert metrics.timings["engine.partial_compile_seconds"].count == 1
        assert metrics.timings["engine.compile_seconds"].count == 1
        assert metrics.gauges["engine.nodes_recompiled"].value > 0
        # The partially recompiled engine is exact against linear search.
        packets = slot.ruleset.sample_packets(400, seed=9, rule_bias=0.8)
        got = _priorities(slot.engine().classify_batch(packets))
        assert got == _priorities(
            [slot.ruleset.classify(p) for p in packets])

    def test_partial_recompile_off_means_full_compiles(self, hicuts):
        slot, metrics = self._slot(hicuts, partial_recompile=False)
        slot.apply_update(adds=[_fresh_rule(slot.ruleset)])
        assert metrics.counters["engine.compiles_full"].value == 2
        assert metrics.counters["engine.compiles_partial"].value == 0
        assert metrics.gauges["engine.nodes_recompiled"].value == 0

    def test_adopting_retrained_trees_is_a_full_rebuild(self, hicuts):
        slot, metrics = self._slot(hicuts)
        retrained = HiCutsBuilder(binth=12).build(slot.ruleset)
        slot.adopt_classifier(retrained)
        assert metrics.counters["engine.compiles_full"].value == 2
        assert metrics.counters["engine.compiles_partial"].value == 0
