"""Tests for the numpy neural-network substrate: layers, model, gradients."""

import numpy as np
import pytest

from repro.nn import ActorCriticMLP, Dense, ReLU, Tanh
from repro.nn.distributions import MultiCategorical


class TestLayers:
    def test_dense_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_dense_backward_accumulates_grads(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng, name="d")
        x = rng.normal(size=(6, 4))
        layer.forward(x)
        grads = {}
        grad_in = layer.backward(np.ones((6, 3)), grads)
        assert grad_in.shape == (6, 4)
        assert grads["d.weight"].shape == (4, 3)
        assert grads["d.bias"].shape == (3,)

    def test_dense_backward_before_forward_raises(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)), {})

    def test_tanh_backward_matches_derivative(self):
        act = Tanh()
        x = np.array([[0.5, -1.0, 2.0]])
        y = act.forward(x)
        grad = act.backward(np.ones_like(x))
        assert np.allclose(grad, 1 - y ** 2)

    def test_relu_masks_negative(self):
        act = ReLU()
        x = np.array([[1.0, -1.0, 0.5]])
        out = act.forward(x)
        assert np.allclose(out, [[1.0, 0.0, 0.5]])
        grad = act.backward(np.ones_like(x))
        assert np.allclose(grad, [[1.0, 0.0, 1.0]])


class TestActorCriticMLP:
    @pytest.fixture
    def model(self):
        return ActorCriticMLP(obs_size=10, action_sizes=(3, 4),
                              hidden_sizes=(16, 16), seed=0)

    def test_forward_shapes(self, model):
        obs = np.random.default_rng(0).normal(size=(7, 10))
        logits, values = model.forward(obs)
        assert logits.shape == (7, 7)
        assert values.shape == (7,)

    def test_single_observation_promoted_to_batch(self, model):
        logits, values = model.forward(np.zeros(10))
        assert logits.shape == (1, 7)
        assert values.shape == (1,)

    def test_split_logits(self, model):
        logits, _ = model.forward(np.zeros((2, 10)))
        blocks = model.split_logits(logits)
        assert [b.shape[1] for b in blocks] == [3, 4]

    def test_parameter_roundtrip(self, model):
        params = {k: v.copy() for k, v in model.parameters().items()}
        obs = np.ones((3, 10))
        before, _ = model.forward(obs)
        # Perturb then restore.
        modified = {k: v + 1.0 for k, v in model.parameters().items()}
        model.load_parameters(modified)
        changed, _ = model.forward(obs)
        assert not np.allclose(before, changed)
        model.load_parameters(params)
        after, _ = model.forward(obs)
        assert np.allclose(before, after)

    def test_num_parameters_positive(self, model):
        assert model.num_parameters() > 0

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            ActorCriticMLP(5, (2,), activation="sigmoid")

    def test_policy_gradient_matches_finite_differences(self):
        """Analytic log-prob gradient through the network matches numerics."""
        model = ActorCriticMLP(obs_size=6, action_sizes=(3, 2),
                               hidden_sizes=(8,), seed=1)
        rng = np.random.default_rng(2)
        obs = rng.normal(size=(4, 6))
        actions = np.stack([rng.integers(0, 3, size=4),
                            rng.integers(0, 2, size=4)], axis=1)

        def loss_fn():
            logits, _ = model.forward(obs)
            dist = MultiCategorical(logits, (3, 2))
            return float(dist.log_prob(actions).sum())

        # Analytic gradient of the summed log-prob w.r.t. parameters.
        logits, _ = model.forward(obs)
        dist = MultiCategorical(logits, (3, 2))
        dlogits = dist.log_prob_grad(actions)
        grads = model.backward(dlogits, np.zeros(4))

        params = model.parameters()
        epsilon = 1e-6
        for name in ("trunk0.weight", "policy.bias"):
            flat_index = 0
            param = params[name]
            original = param.flat[flat_index]
            param.flat[flat_index] = original + epsilon
            model.load_parameters(params)
            up = loss_fn()
            param.flat[flat_index] = original - epsilon
            model.load_parameters(params)
            down = loss_fn()
            param.flat[flat_index] = original
            model.load_parameters(params)
            numeric = (up - down) / (2 * epsilon)
            assert grads[name].flat[flat_index] == pytest.approx(numeric, rel=1e-4,
                                                                 abs=1e-6)
