"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.engine import NUMBA_AVAILABLE
from repro.rules import io as rules_io


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--seed-family", "fw1", "--num-rules", "50",
             "--output", "out.cb"]
        )
        assert args.command == "generate"
        assert args.seed_family == "fw1"
        assert args.num_rules == 50


class TestCommands:
    def test_generate_writes_rule_file(self, tmp_path):
        output = tmp_path / "rules.cb"
        code = main(["generate", "--seed-family", "acl1", "--num-rules", "40",
                     "--seed", "3", "--output", str(output)])
        assert code == 0
        loaded = rules_io.load(output)
        assert len(loaded) == 40

    def test_compare_prints_table(self, tmp_path, capsys, small_acl_ruleset):
        rules_path = tmp_path / "rules.cb"
        rules_io.dump(small_acl_ruleset, rules_path)
        code = main(["compare", str(rules_path), "--binth", "8"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("HiCuts", "HyperCuts", "EffiCuts", "CutSplit"):
            assert name in out

    def test_train_then_classify_roundtrip(self, tmp_path, capsys,
                                           small_acl_ruleset):
        rules_path = tmp_path / "rules.cb"
        tree_path = tmp_path / "tree.json"
        rules_io.dump(small_acl_ruleset, rules_path)
        code = main(["train", str(rules_path), "--output", str(tree_path),
                     "--timesteps", "800", "--leaf-threshold", "8"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["classification_time"] >= 1
        assert tree_path.exists()

        code = main(["classify", str(rules_path), str(tree_path),
                     "--num-packets", "100"])
        assert code == 0
        assert "0 mismatches" in capsys.readouterr().out


class TestEngineBench:
    def test_engine_bench_reports_speedup_and_hit_rate(self, capsys):
        code = main(["engine-bench", "--num-rules", "120",
                     "--num-packets", "3000", "--flow-cache", "512",
                     "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "speedup" in out
        assert "flow cache:" in out
        assert "hit rate" in out
        assert "evictions" in out

    def test_engine_bench_seed_reproduces_the_run(self, capsys):
        argv = ["engine-bench", "--num-rules", "60", "--num-packets", "500",
                "--seed", "9"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # Same seed, same generated ruleset and sampled packets: the
        # workload summary (everything before the compile wall time)
        # matches exactly.
        summary = lambda out: out.splitlines()[0].split(", compile")[0]
        assert summary(first) == summary(second)
        assert "60 rules, 500 packets" in summary(first)

    def test_engine_bench_rejects_unknown_algorithm(self, capsys):
        code = main(["engine-bench", "--algorithm", "NoSuchCuts",
                     "--num-rules", "50", "--num-packets", "100"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_engine_bench_rejects_unknown_backend(self, capsys):
        code = main(["engine-bench", "--engine", "cython",
                     "--num-rules", "50", "--num-packets", "100"])
        assert code == 2
        assert "unknown engine backend" in capsys.readouterr().err

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_engine_bench_missing_numba_warns_and_exits_clean(self, capsys):
        # An environment gap, not a usage error: scripted sweeps over
        # backends must keep going, so this warns on stderr and returns 0.
        code = main(["engine-bench", "--engine", "numba",
                     "--num-rules", "50", "--num-packets", "100"])
        assert code == 0
        captured = capsys.readouterr()
        assert "numba is not installed" in captured.err
        assert "skipping this run" in captured.err
        assert captured.out == ""

    def test_engine_bench_reports_backend_and_warmup(self, capsys, tmp_path):
        record_path = tmp_path / "BENCH_engine.json"
        code = main(["engine-bench", "--engine", "numpy", "--num-rules", "60",
                     "--num-packets", "500", "--seed", "2",
                     "--json", str(record_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend numpy" in out
        assert "warmup" in out
        record = json.loads(record_path.read_text())
        assert record["config"]["engine_backend"] == "numpy"
        assert "warmup_seconds" in record["timings"]


class TestServeBench:
    def test_serve_bench_arguments(self):
        args = build_parser().parse_args(
            ["serve-bench", "--tenants", "2", "--num-packets", "500",
             "--churn-events", "1", "--verify"]
        )
        assert args.command == "serve-bench"
        assert args.tenants == 2 and args.verify

    def test_serve_bench_reports_and_verifies(self, capsys):
        code = main(["serve-bench", "--tenants", "2", "--num-rules", "60",
                     "--num-packets", "1200", "--num-flows", "120",
                     "--churn-events", "1", "--verify", "--sync-swaps"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "latency p99" in out
        assert "cache hit rate" in out
        assert "engine swaps" in out
        assert "0 mismatches" in out

    def test_serve_bench_rejects_bad_family(self, capsys):
        code = main(["serve-bench", "--families", "nope",
                     "--num-packets", "100"])
        assert code == 2
        assert "unknown seed family" in capsys.readouterr().err

    def test_serve_bench_rejects_bad_counts(self, capsys):
        assert main(["serve-bench", "--tenants", "0"]) == 2
        capsys.readouterr()
        assert main(["serve-bench", "--num-packets", "0"]) == 2
