"""Tests for the baseline algorithms: HiCuts, HyperCuts, EffiCuts, CutSplit,
linear search and tuple-space search.

Every baseline must (a) build a complete classifier, (b) classify exactly
like linear search, and (c) exhibit the qualitative behaviour the literature
attributes to it (e.g. EffiCuts trades classification time for memory).
"""

import pytest

from repro.baselines import (
    CutSplitBuilder,
    EffiCutsBuilder,
    HiCutsBuilder,
    HyperCutsBuilder,
    LinearSearchBuilder,
    TupleSpaceClassifier,
    compare_builders,
    default_baselines,
)
from repro.classbench import generate_classifier
from repro.rules import Dimension
from repro.tree import validate_classifier

ALL_BUILDERS = [HiCutsBuilder, HyperCutsBuilder, EffiCutsBuilder, CutSplitBuilder]


@pytest.mark.parametrize("builder_cls", ALL_BUILDERS)
class TestCorrectness:
    def test_acl_classifier_correct(self, builder_cls, small_acl_ruleset):
        builder = builder_cls(binth=8)
        classifier = builder.build(small_acl_ruleset)
        report = validate_classifier(classifier, num_random_packets=150)
        assert report.is_correct, f"{builder.name} misclassified packets"

    def test_fw_classifier_correct(self, builder_cls, small_fw_ruleset):
        builder = builder_cls(binth=8)
        classifier = builder.build(small_fw_ruleset)
        report = validate_classifier(classifier, num_random_packets=150)
        assert report.is_correct, f"{builder.name} misclassified packets"

    def test_stats_are_positive(self, builder_cls, small_acl_ruleset):
        result = builder_cls(binth=8).build_with_stats(small_acl_ruleset)
        assert result.classification_time >= 1
        assert result.bytes_per_rule > 0
        assert result.stats.num_nodes >= 1


class TestHiCuts:
    def test_respects_leaf_threshold(self, small_acl_ruleset):
        classifier = HiCutsBuilder(binth=4).build(small_acl_ruleset)
        tree = classifier.trees[0]
        for leaf in tree.leaves():
            if not leaf.forced_leaf:
                assert leaf.num_rules <= 4

    def test_produces_single_tree(self, small_acl_ruleset):
        classifier = HiCutsBuilder(binth=8).build(small_acl_ruleset)
        assert len(classifier.trees) == 1

    def test_space_factor_limits_fanout(self, small_fw_ruleset):
        tight = HiCutsBuilder(binth=8, spfac=1.0).build_with_stats(small_fw_ruleset)
        loose = HiCutsBuilder(binth=8, spfac=8.0).build_with_stats(small_fw_ruleset)
        # A looser space factor allows more cuts per node, so the tree gets
        # shallower (or equal) at the cost of more memory.
        assert loose.classification_time <= tight.classification_time

    def test_dimension_choice_prefers_discriminating_dim(self, small_acl_ruleset):
        builder = HiCutsBuilder(binth=8)
        from repro.tree import DecisionTree

        tree = DecisionTree(small_acl_ruleset, leaf_threshold=8)
        dim = builder.choose_dimension(tree.root)
        counts = {
            d: len({r.range_for(d) for r in tree.root.rules}) for d in Dimension
        }
        assert counts[dim] == max(counts.values())


class TestHyperCuts:
    def test_can_cut_multiple_dimensions(self, small_fw_ruleset):
        from repro.tree import DecisionTree, MultiCutAction

        builder = HyperCutsBuilder(binth=8)
        tree = DecisionTree(small_fw_ruleset, leaf_threshold=8)
        action = builder.choose_action(tree.root)
        # On a rich root node HyperCuts generally multi-cuts; at minimum it
        # must return a usable cut action.
        assert action is not None

    def test_not_deeper_than_hicuts_on_average(self, small_fw_ruleset):
        hi = HiCutsBuilder(binth=8).build_with_stats(small_fw_ruleset)
        hyper = HyperCutsBuilder(binth=8).build_with_stats(small_fw_ruleset)
        # Multi-dimensional cuts should not make trees deeper.
        assert hyper.classification_time <= hi.classification_time + 1


class TestEffiCuts:
    def test_partitions_reduce_memory_vs_hicuts(self):
        # Use a larger fw classifier where rule replication actually bites.
        ruleset = generate_classifier("fw5", 300, seed=5)
        hi = HiCutsBuilder(binth=16).build_with_stats(ruleset)
        effi = EffiCutsBuilder(binth=16).build_with_stats(ruleset)
        assert effi.bytes_per_rule < hi.bytes_per_rule

    def test_partition_preserves_all_rules(self, small_fw_ruleset):
        builder = EffiCutsBuilder(binth=8)
        categories = builder.partition_rules(small_fw_ruleset.rules)
        total = sum(len(rules) for rules in categories.values())
        assert total == len(small_fw_ruleset)

    def test_merging_reduces_category_count(self, small_fw_ruleset):
        merged = EffiCutsBuilder(binth=8, merge_small_categories=True,
                                 min_category_size=10)
        unmerged = EffiCutsBuilder(binth=8, merge_small_categories=False)
        merged_count = len(merged.partition_rules(small_fw_ruleset.rules))
        unmerged_count = len(unmerged.partition_rules(small_fw_ruleset.rules))
        assert merged_count <= unmerged_count

    def test_single_dimension_cut_mode(self, small_fw_ruleset):
        restricted = EffiCutsBuilder(binth=8, use_multi_dimensional_cuts=False)
        classifier = restricted.build(small_fw_ruleset)
        report = validate_classifier(classifier, num_random_packets=100)
        assert report.is_correct


class TestCutSplit:
    def test_partitions_by_ip_smallness(self, small_fw_ruleset):
        builder = CutSplitBuilder(binth=8)
        subsets = builder.partition_rules(small_fw_ruleset.rules)
        assert sum(len(v) for v in subsets.values()) == len(small_fw_ruleset)
        assert all(rules for rules in subsets.values())

    def test_produces_multiple_trees_when_mixed(self, small_fw_ruleset):
        classifier = CutSplitBuilder(binth=8).build(small_fw_ruleset)
        assert len(classifier.trees) >= 1

    def test_memory_competitive_with_hicuts(self):
        ruleset = generate_classifier("fw3", 300, seed=6)
        hi = HiCutsBuilder(binth=16).build_with_stats(ruleset)
        cutsplit = CutSplitBuilder(binth=16).build_with_stats(ruleset)
        assert cutsplit.bytes_per_rule <= hi.bytes_per_rule * 1.5


class TestLinearSearch:
    def test_single_leaf(self, small_acl_ruleset):
        classifier = LinearSearchBuilder().build(small_acl_ruleset)
        assert classifier.stats().num_nodes == 1
        assert classifier.stats().classification_time == 1

    def test_correct(self, small_acl_ruleset):
        classifier = LinearSearchBuilder().build(small_acl_ruleset)
        report = validate_classifier(classifier, num_random_packets=100)
        assert report.is_correct


class TestTupleSpace:
    def test_matches_linear_search(self, small_acl_ruleset):
        tss = TupleSpaceClassifier(small_acl_ruleset)
        for packet in small_acl_ruleset.sample_packets(150, seed=7):
            expected = small_acl_ruleset.classify(packet)
            actual = tss.classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)

    def test_has_fewer_tuples_than_rules(self, small_acl_ruleset):
        tss = TupleSpaceClassifier(small_acl_ruleset)
        assert 1 <= tss.num_tuples <= len(small_acl_ruleset)


class TestComparisonHelpers:
    def test_default_baselines_keys(self):
        assert set(default_baselines()) == {
            "HiCuts", "HyperCuts", "EffiCuts", "CutSplit"
        }

    def test_compare_builders(self, small_acl_ruleset):
        results = compare_builders(small_acl_ruleset, default_baselines(binth=8))
        assert set(results) == {"HiCuts", "HyperCuts", "EffiCuts", "CutSplit"}
        for name, result in results.items():
            assert result.algorithm == name
            assert result.classification_time >= 1
