"""Tests for repro.rules.packet."""

import pytest

from repro.exceptions import InvalidRangeError
from repro.rules import Dimension, Packet


class TestPacket:
    def test_as_tuple_order(self):
        packet = Packet(1, 2, 3, 4, 5)
        assert packet.as_tuple() == (1, 2, 3, 4, 5)

    def test_getitem_by_dimension(self):
        packet = Packet(10, 20, 30, 40, 6)
        assert packet[Dimension.SRC_IP] == 10
        assert packet[Dimension.PROTOCOL] == 6
        assert packet[3] == 40

    def test_iteration(self):
        assert list(Packet(1, 2, 3, 4, 5)) == [1, 2, 3, 4, 5]

    def test_out_of_range_field_rejected(self):
        with pytest.raises(InvalidRangeError):
            Packet(0, 0, 70000, 0, 0)
        with pytest.raises(InvalidRangeError):
            Packet(0, 0, 0, 0, 300)

    def test_from_values_length_check(self):
        with pytest.raises(InvalidRangeError):
            Packet.from_values((1, 2, 3))

    def test_from_strings(self):
        packet = Packet.from_strings("10.0.0.1", "192.168.1.1", 1234, 80, 6)
        assert packet.src_ip == (10 << 24) + 1
        assert packet.dst_port == 80

    def test_pretty_contains_dotted_quads(self):
        packet = Packet.from_strings("10.0.0.1", "192.168.1.1", 1234, 80, 6)
        text = packet.pretty()
        assert "10.0.0.1" in text and "192.168.1.1" in text

    def test_immutability(self):
        packet = Packet(1, 2, 3, 4, 5)
        with pytest.raises(AttributeError):
            packet.src_ip = 9
