"""Tests for the ingestion frontend (`repro.ingest`).

Three layers:

* :class:`TokenBucket` unit behaviour — virtual-clock refill, exact burst
  boundary, non-negative balance — plus hypothesis properties over
  arbitrary arrival sequences.
* :class:`AdmissionController` — the admitted/throttled/shed partition as
  a hypothesis invariant over arbitrary offered streams and configs,
  determinism (same stream twice → same tallies), the structural
  queue-delay bound, shard-exactness (disjoint tenants admitted separately
  equal the merged stream), and SOFT/HARD signal behaviour.
* :class:`IngestServer` — concurrent asyncio streams onto one serving
  thread: typed rejections, correct answers vs linear search, and counter
  partition end to end.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.classbench import generate_classifier
from repro.exceptions import IngestError, ThrottledError
from repro.ingest import (
    ADMITTED,
    SHED,
    THROTTLED,
    AdmissionController,
    CongestionLevel,
    IngestConfig,
    IngestServer,
    TokenBucket,
)
from repro.rules import Packet
from repro.serve.batcher import BatchPolicy, Request
from repro.serve.registry import TenantRegistry

PACKET = Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=6)


def _request(tenant: str, time: float, seq: int = -1) -> Request:
    return Request(tenant_id=tenant, packet=PACKET, time=time,
                   flow_id=0, seq=seq)


# --------------------------------------------------------------------- #
# TokenBucket
# --------------------------------------------------------------------- #


class TestTokenBucket:
    def test_starts_full_and_burst_is_exact_at_the_boundary(self):
        bucket = TokenBucket(rate=10.0, burst=4)
        # Exactly `burst` same-instant consumes succeed; one more fails.
        assert all(bucket.try_consume(0.0) for _ in range(4))
        assert not bucket.try_consume(0.0)
        # After exactly 1/rate seconds one token (and only one) is back.
        assert bucket.try_consume(0.1)
        assert not bucket.try_consume(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=8)
        assert all(bucket.try_consume(0.0) for _ in range(8))
        bucket.refill(1e9)  # a long idle period refills to burst, not more
        assert bucket.available(1e9) == pytest.approx(8.0)

    def test_monotone_clock_clamps_earlier_stamps(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.try_consume(1.0)
        before = bucket.tokens
        bucket.refill(0.5)  # out-of-order stamp must not rewind or refill
        assert bucket.tokens == pytest.approx(before)
        assert bucket.last_refill == pytest.approx(1.0)

    def test_seconds_until_is_the_exact_retry_hint(self):
        bucket = TokenBucket(rate=4.0, burst=1)
        assert bucket.seconds_until() == 0.0
        assert bucket.try_consume(0.0)
        assert bucket.seconds_until() == pytest.approx(0.25)
        # The hint is honest: consuming exactly then succeeds.
        assert bucket.try_consume(0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)

    @given(
        rate=st.floats(min_value=0.5, max_value=1e6),
        burst=st.integers(min_value=1, max_value=64),
        deltas=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                  allow_nan=False), max_size=50),
    )
    @settings(max_examples=200, deadline=None)
    def test_balance_never_negative_never_exceeds_burst(self, rate, burst,
                                                        deltas):
        """Whatever the arrival pattern, 0 <= tokens <= burst always."""
        bucket = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        for delta in deltas:
            now += delta
            bucket.try_consume(now)
            assert 0.0 <= bucket.tokens <= bucket.burst + 1e-9

    @given(
        burst=st.integers(min_value=1, max_value=32),
        idle=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_burst_boundary_exact_after_any_idle(self, burst, idle):
        """After an idle period exactly ``burst`` back-to-back admits fit."""
        bucket = TokenBucket(rate=1000.0, burst=burst)
        assert all(bucket.try_consume(idle) for _ in range(burst))
        assert not bucket.try_consume(idle)


# --------------------------------------------------------------------- #
# AdmissionController
# --------------------------------------------------------------------- #

configs = st.builds(
    IngestConfig,
    tenant_rate=st.floats(min_value=1.0, max_value=1e5),
    tenant_burst=st.integers(min_value=1, max_value=128),
    queue_limit=st.integers(min_value=1, max_value=256),
    soft_fraction=st.floats(min_value=0.1, max_value=1.0),
    adaptive_sources=st.booleans(),
)

streams = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.floats(min_value=0.0, max_value=5.0, allow_nan=False)),
    max_size=120,
)


def _offer_all(controller, stream):
    decisions = []
    for tenant, time in sorted(stream, key=lambda e: e[1]):
        decisions.append(controller.offer(_request(tenant, time)))
    return decisions


class TestAdmissionController:
    @given(config=configs, stream=streams)
    @settings(max_examples=150, deadline=None)
    def test_partition_invariant(self, config, stream):
        """admitted + throttled + shed == offered, for any stream/config."""
        controller = AdmissionController(config)
        decisions = _offer_all(controller, stream)
        assert controller.offered == len(stream)
        assert (controller.admitted + controller.throttled
                + controller.shed) == controller.offered
        by_status = {ADMITTED: 0, THROTTLED: 0, SHED: 0}
        for decision in decisions:
            by_status[decision.status] += 1
        assert by_status[ADMITTED] == controller.admitted
        assert by_status[THROTTLED] == controller.throttled
        assert by_status[SHED] == controller.shed

    @given(config=configs, stream=streams)
    @settings(max_examples=100, deadline=None)
    def test_queue_delay_bound(self, config, stream):
        """No admitted request waits longer than queue_limit/drain_rate."""
        controller = AdmissionController(config)
        for decision in _offer_all(controller, stream):
            if decision.admitted:
                assert decision.queue_delay <= \
                    config.max_queue_delay + 1e-9
                assert decision.release_time is not None

    @given(config=configs, stream=streams)
    @settings(max_examples=100, deadline=None)
    def test_deterministic_replay(self, config, stream):
        """The same offered stream always produces identical decisions."""
        first = _offer_all(AdmissionController(config), stream)
        second = _offer_all(AdmissionController(config), stream)
        assert first == second

    @given(config=configs, stream=streams)
    @settings(max_examples=100, deadline=None)
    def test_shard_exactness(self, config, stream):
        """Per-tenant admission sharded by tenant equals the merged run.

        The property behind exact sharded ingest counters: admission state
        is per-tenant, so splitting a stream into shard-disjoint tenant
        groups and admitting each separately must reproduce the single
        controller's tallies exactly.
        """
        merged = AdmissionController(config)
        _offer_all(merged, stream)
        shards = {t: AdmissionController(config) for t in ("a", "b", "c")}
        for tenant, time in sorted(stream, key=lambda e: e[1]):
            shards[tenant].offer(_request(tenant, time))
        summed = {key: sum(s.counters()[key] for s in shards.values())
                  for key in merged.counters()}
        assert summed == merged.counters()

    def test_empty_bucket_throttles_with_retry_hint(self):
        config = IngestConfig(tenant_rate=10.0, tenant_burst=1,
                              queue_limit=8, adaptive_sources=False)
        controller = AdmissionController(config)
        assert controller.offer(_request("a", 0.0)).admitted
        decision = controller.offer(_request("a", 0.0))
        assert decision.status == THROTTLED
        assert decision.retry_after == pytest.approx(0.1)
        # The hint is honest on the virtual clock.
        assert controller.offer(_request("a", 0.1)).admitted

    def test_hard_level_sheds_when_queue_shorter_than_burst(self):
        # queue_limit < burst: a full-burst same-instant volley overflows
        # the queue, so the tail is shed at the HARD level (no token taken).
        config = IngestConfig(tenant_rate=10.0, tenant_burst=32,
                              queue_limit=4, adaptive_sources=False)
        controller = AdmissionController(config)
        decisions = [controller.offer(_request("a", 0.0)) for _ in range(8)]
        assert [d.status for d in decisions[:4]] == [ADMITTED] * 4
        assert all(d.status == SHED for d in decisions[4:])
        assert all(d.level == CongestionLevel.HARD for d in decisions[4:])
        assert controller.shed == 4

    def test_soft_signal_repaces_adaptive_sources(self):
        # Half-full queue flips the signal to SOFT; with adaptive sources
        # the next arrivals are re-paced to the sustained rate, so they
        # admit (later) instead of throttling.
        config = IngestConfig(tenant_rate=10.0, tenant_burst=64,
                              queue_limit=8, adaptive_sources=True)
        controller = AdmissionController(config)
        decisions = [controller.offer(_request("a", 0.0)) for _ in range(8)]
        assert all(d.admitted for d in decisions)
        soft = [d for d in decisions if d.level == CongestionLevel.SOFT]
        assert soft, "a same-instant volley never crossed the SOFT level"
        # Re-pacing keeps the virtual queue bounded: release times advance
        # at exactly the drain rate.
        releases = [d.release_time for d in decisions]
        assert releases == sorted(releases)

    def test_admit_restamps_and_reorders(self):
        config = IngestConfig(tenant_rate=5.0, tenant_burst=2, queue_limit=4,
                              adaptive_sources=False)
        controller = AdmissionController(config)
        requests = [_request("a", 0.0, seq=0), _request("a", 0.0, seq=1),
                    _request("a", 0.0, seq=2)]
        admitted = controller.admit(requests)
        assert len(admitted) == 2  # burst=2, third has no token
        assert [r.time for r in admitted] == sorted(r.time for r in admitted)
        # Times were re-stamped to queue release times (drain at 5/s).
        assert admitted[1].time == pytest.approx(admitted[0].time + 0.2)

    def test_per_tenant_override(self):
        config = IngestConfig(tenant_rate=10.0, tenant_burst=1,
                              queue_limit=4, adaptive_sources=False)
        vip = IngestConfig(tenant_rate=10.0, tenant_burst=8, queue_limit=32,
                           adaptive_sources=False)
        controller = AdmissionController(config, per_tenant={"vip": vip})
        for _ in range(4):
            controller.offer(_request("vip", 0.0))
            controller.offer(_request("std", 0.0))
        summary = controller.tenant_summary(trace_seconds=1.0)
        assert summary["vip"]["admitted"] == 4
        assert summary["std"]["admitted"] == 1
        assert summary["std"]["throttled"] == 3
        assert summary["vip"]["goodput_pps"] == pytest.approx(4.0)

    def test_counters_and_metrics_agree(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        config = IngestConfig(tenant_rate=10.0, tenant_burst=2, queue_limit=4,
                              adaptive_sources=False)
        controller = AdmissionController(config, metrics=metrics)
        for i in range(6):
            controller.offer(_request("a", 0.0))
        assert metrics.counter("ingest.offered").value == 6
        assert metrics.counter("ingest.admitted").value == \
            controller.admitted
        assert metrics.counter("ingest.throttled").value == \
            controller.throttled
        assert metrics.timing("ingest.queue_delay_seconds").count == \
            controller.admitted


# --------------------------------------------------------------------- #
# IngestServer (asyncio frontend)
# --------------------------------------------------------------------- #


@pytest.fixture()
def ingest_registry():
    registry = TenantRegistry(background_swaps=False)
    ruleset = generate_classifier("acl1", 40, seed=5)
    registry.register("t0", ruleset)
    return registry, ruleset


class TestIngestServer:
    def test_submit_requires_running_server(self, ingest_registry):
        registry, _ = ingest_registry
        server = IngestServer(registry)

        async def scenario():
            with pytest.raises(IngestError):
                await server.submit(_request("t0", 0.0))

        asyncio.run(scenario())

    def test_over_rate_stream_throttles_typed_and_serves_exactly(
            self, ingest_registry):
        registry, ruleset = ingest_registry
        config = IngestConfig(tenant_rate=100.0, tenant_burst=8,
                              queue_limit=16, adaptive_sources=False)
        from repro.classbench import generate_trace
        packets = generate_trace(ruleset, num_packets=40, seed=5)

        async def scenario():
            answers, throttled = [], 0
            async with IngestServer(registry, config,
                                    policy=BatchPolicy(max_batch=4)) as server:
                # 40 same-instant packets against burst=8: typed rejections
                # for the overflow, never a silent drop.
                for i, packet in enumerate(packets):
                    try:
                        priority = await server.submit(Request(
                            tenant_id="t0", packet=packet, time=0.0,
                            flow_id=0, seq=-1))
                    except ThrottledError as error:
                        assert error.reason in ("throttled", "shed")
                        assert error.tenant_id == "t0"
                        throttled += 1
                        continue
                    answers.append((i, priority))
            return answers, throttled

        answers, throttled = asyncio.run(scenario())
        assert len(answers) == 8 and throttled == 32
        # Every admitted answer equals linear search over the ruleset.
        for i, priority in answers:
            expected = ruleset.classify(packets[i])
            assert priority == (expected.priority if expected else None)

    def test_concurrent_streams_partition_counters(self, ingest_registry):
        registry, ruleset = ingest_registry
        registry.register("t1", ruleset)
        config = IngestConfig(tenant_rate=50.0, tenant_burst=4,
                              queue_limit=8, adaptive_sources=False)

        async def stream(tenant, count):
            for i in range(count):
                yield _request(tenant, time=i * 0.001)

        async def scenario():
            async with IngestServer(registry, config) as server:
                summaries = await asyncio.gather(
                    server.serve_stream("t0", stream("t0", 30)),
                    server.serve_stream("t1", stream("t1", 20)),
                )
            return server, summaries

        server, summaries = asyncio.run(scenario())
        for summary, count in zip(summaries, (30, 20)):
            assert summary.offered == count
            assert (summary.admitted + summary.throttled
                    + summary.shed) == count
            assert summary.throttled > 0, \
                "a 1000 pps stream against rate=50 never throttled"
            assert len(summary.results) == summary.admitted
        counters = server.admission.counters()
        assert counters["ingest_offered"] == 50
        assert counters["ingest_admitted"] == \
            sum(s.admitted for s in summaries)
        assert server.served == counters["ingest_admitted"]

    def test_double_start_raises(self, ingest_registry):
        registry, _ = ingest_registry

        async def scenario():
            async with IngestServer(registry) as server:
                with pytest.raises(IngestError):
                    server.start()

        asyncio.run(scenario())
