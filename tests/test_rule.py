"""Tests for repro.rules.rule: matching, geometry and formatting."""

import pytest

from repro.exceptions import RuleFormatError
from repro.rules import Dimension, FIELD_RANGES, Packet, Rule
from repro.rules.rule import format_prefix, highest_priority, parse_prefix


@pytest.fixture
def sample_rule() -> Rule:
    return Rule.from_prefixes(
        src_ip="10.0.0.0/8",
        dst_ip="192.168.0.0/16",
        src_port=(1000, 2001),
        dst_port=(80, 81),
        protocol=6,
        priority=5,
    )


class TestConstruction:
    def test_wrong_number_of_ranges_rejected(self):
        with pytest.raises(RuleFormatError):
            Rule(ranges=((0, 1), (0, 1)))

    def test_wildcard_covers_full_space(self):
        rule = Rule.wildcard()
        for dim in Dimension:
            assert rule.range_for(dim) == FIELD_RANGES[dim]
        assert rule.num_wildcard_dims() == 5

    def test_from_fields_none_means_wildcard(self):
        rule = Rule.from_fields(dst_port=(80, 81))
        assert rule.is_wildcard(Dimension.SRC_IP)
        assert not rule.is_wildcard(Dimension.DST_PORT)

    def test_from_prefixes_protocol_exact(self, sample_rule):
        assert sample_rule.range_for(Dimension.PROTOCOL) == (6, 7)


class TestMatching:
    def test_matching_packet(self, sample_rule):
        packet = Packet.from_strings("10.1.2.3", "192.168.5.6", 1500, 80, 6)
        assert sample_rule.matches(packet)

    def test_non_matching_port(self, sample_rule):
        packet = Packet.from_strings("10.1.2.3", "192.168.5.6", 1500, 443, 6)
        assert not sample_rule.matches(packet)

    def test_boundary_values_half_open(self, sample_rule):
        low = Packet.from_strings("10.0.0.0", "192.168.0.0", 1000, 80, 6)
        assert sample_rule.matches(low)
        above = Packet.from_strings("10.1.2.3", "192.168.5.6", 2001, 80, 6)
        assert not sample_rule.matches(above)

    def test_wildcard_matches_everything(self):
        rule = Rule.wildcard()
        assert rule.matches(Packet(0, 0, 0, 0, 0))
        assert rule.matches(Packet((1 << 32) - 1, 0, 65535, 65535, 255))


class TestGeometry:
    def test_intersects_and_covered(self, sample_rule):
        box = list(FIELD_RANGES[d] for d in Dimension)
        assert sample_rule.intersects(box)
        assert sample_rule.is_covered_by(box)

    def test_disjoint_box_does_not_intersect(self, sample_rule):
        box = [FIELD_RANGES[d] for d in Dimension]
        box[int(Dimension.DST_PORT)] = (443, 444)
        assert not sample_rule.intersects(box)

    def test_clip_to_box(self, sample_rule):
        box = [FIELD_RANGES[d] for d in Dimension]
        box[int(Dimension.SRC_PORT)] = (0, 1500)
        clipped = sample_rule.clip_to(box)
        assert clipped is not None
        assert clipped.range_for(Dimension.SRC_PORT) == (1000, 1500)
        assert clipped.priority == sample_rule.priority

    def test_clip_to_disjoint_box_is_none(self, sample_rule):
        box = [FIELD_RANGES[d] for d in Dimension]
        box[int(Dimension.PROTOCOL)] = (17, 18)
        assert sample_rule.clip_to(box) is None

    def test_coverage_fraction(self, sample_rule):
        assert sample_rule.coverage_fraction(Dimension.SRC_IP) == pytest.approx(1 / 256)
        assert sample_rule.coverage_fraction(Dimension.DST_PORT) == pytest.approx(
            1 / 65536
        )
        assert Rule.wildcard().coverage_fraction(Dimension.SRC_IP) == 1.0

    def test_covers_and_overlaps(self, sample_rule):
        wildcard = Rule.wildcard()
        assert wildcard.covers(sample_rule)
        assert not sample_rule.covers(wildcard)
        assert sample_rule.overlaps(wildcard)

    def test_span(self, sample_rule):
        assert sample_rule.span(Dimension.SRC_PORT) == 1001
        assert sample_rule.span(Dimension.PROTOCOL) == 1


class TestFormatting:
    def test_to_classbench_roundtrip_via_parse(self, sample_rule):
        from repro.rules.io import parse_rule_line

        line = sample_rule.to_classbench()
        parsed = parse_rule_line(line, priority=sample_rule.priority)
        assert parsed.ranges == sample_rule.ranges

    def test_pretty_mentions_wildcards(self):
        text = Rule.wildcard().pretty()
        assert "SRC_IP=*" in text

    def test_parse_prefix_bare_address(self):
        assert parse_prefix("10.0.0.1") == (
            (10 << 24) + 1, (10 << 24) + 2
        )

    def test_format_prefix(self):
        assert format_prefix(((10 << 24), (10 << 24) + (1 << 16))) == "10.0.0.0/16"


class TestHighestPriority:
    def test_empty_is_none(self):
        assert highest_priority([]) is None

    def test_picks_max_priority(self):
        rules = [Rule.wildcard(priority=1), Rule.wildcard(priority=9),
                 Rule.wildcard(priority=4)]
        assert highest_priority(rules).priority == 9
