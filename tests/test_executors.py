"""Tests for the backend-pluggable executor layer and harness parallel_map."""

import os

import pytest

from repro.executors import (
    CompletedTask,
    EXECUTOR_BACKENDS,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    shared_executor,
    shutdown_shared_executors,
)
from repro.harness.parallel import default_worker_count, parallel_map


def _square(x):
    return x * x


def _getpid(_):
    return os.getpid()


_INIT_STATE = {}


def _record_init(tag):
    _INIT_STATE["tag"] = tag


def _read_init(_):
    return _INIT_STATE.get("tag")


class TestSerialExecutor:
    def test_maps_in_order(self):
        executor = SerialExecutor()
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.num_workers == 1

    def test_initializer_runs_once_before_first_task(self):
        _INIT_STATE.clear()
        executor = SerialExecutor(initializer=_record_init, initargs=("x",))
        assert executor.map(_read_init, [0]) == ["x"]
        _INIT_STATE["tag"] = "mutated"
        # A second map must not re-run the initializer.
        assert executor.map(_read_init, [0]) == ["mutated"]

    def test_context_manager(self):
        with SerialExecutor() as executor:
            assert executor.map(_square, [4]) == [16]


class TestProcessPoolExecutor:
    def test_pool_persists_across_maps(self):
        with ProcessPoolExecutor(1) as executor:
            assert not executor.is_running
            first = executor.map(_getpid, [0, 1])
            assert executor.is_running
            second = executor.map(_getpid, [0, 1])
        # Same worker process served both calls: the pool was reused, and it
        # is a different process from the parent.
        assert set(first) == set(second)
        assert os.getpid() not in first

    def test_initializer_runs_in_workers(self):
        _INIT_STATE.clear()
        with ProcessPoolExecutor(1, initializer=_record_init,
                                 initargs=("worker",)) as executor:
            assert executor.map(_read_init, [0]) == ["worker"]
        # Parent process state untouched: the initializer ran in the child.
        assert _INIT_STATE == {}

    def test_empty_map_does_not_start_pool(self):
        with ProcessPoolExecutor(2) as executor:
            assert executor.map(_square, []) == []
            assert not executor.is_running

    def test_shutdown_idempotent(self):
        executor = ProcessPoolExecutor(1)
        executor.map(_square, [2])
        executor.shutdown()
        executor.shutdown()
        assert not executor.is_running

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(0)


class TestMakeExecutor:
    def test_auto_backend(self):
        assert isinstance(make_executor(1), SerialExecutor)
        executor = make_executor(2)
        assert isinstance(executor, ProcessPoolExecutor)
        assert executor.num_workers == 2
        executor.shutdown()

    def test_explicit_backend(self):
        executor = make_executor(1, backend="process")
        assert isinstance(executor, ProcessPoolExecutor)
        executor.shutdown()
        assert isinstance(make_executor(4, backend="serial"), SerialExecutor)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_executor(2, backend="threads")
        assert "serial" in EXECUTOR_BACKENDS and "process" in EXECUTOR_BACKENDS

    def test_thread_backend(self):
        executor = make_executor(2, backend="thread")
        assert isinstance(executor, ThreadExecutor)
        assert executor.num_workers == 2
        executor.shutdown()


def _fail(_):
    raise RuntimeError("task boom")


class TestSubmit:
    def test_serial_submit_runs_inline(self):
        executor = SerialExecutor()
        handle = executor.submit(_square, 6)
        assert handle.ready()
        assert handle.result() == 36

    def test_serial_submit_captures_exceptions(self):
        handle = SerialExecutor().submit(_fail, 0)
        assert handle.ready()
        with pytest.raises(RuntimeError, match="task boom"):
            handle.result()

    def test_completed_task_surface(self):
        assert CompletedTask(value=3).result() == 3

    def test_thread_submit_overlaps_caller(self):
        with ThreadExecutor(1) as executor:
            handle = executor.submit(_square, 7)
            assert handle.result() == 49
            failing = executor.submit(_fail, 0)
            with pytest.raises(RuntimeError, match="task boom"):
                failing.result()

    def test_thread_map_preserves_order(self):
        with ThreadExecutor(2) as executor:
            assert executor.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            # Threads share the caller's process.
            assert executor.map(_getpid, [0])[0] == os.getpid()

    def test_process_submit(self):
        with ProcessPoolExecutor(1) as executor:
            handle = executor.submit(_square, 8)
            assert handle.result() == 64
            assert handle.ready()


class TestSharedExecutors:
    def test_shared_pool_is_reused(self):
        shutdown_shared_executors()
        first = shared_executor(2)
        second = shared_executor(2)
        assert first is second
        assert isinstance(first, ProcessPoolExecutor)
        shutdown_shared_executors()

    def test_serial_for_one_worker(self):
        assert isinstance(shared_executor(1), SerialExecutor)


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], num_workers=1) == [1, 4, 9]
        assert parallel_map(_square, [5]) == [25]

    def test_pool_path_reuses_shared_pool(self):
        shutdown_shared_executors()
        first = parallel_map(_getpid, [0, 1, 2], num_workers=2)
        second = parallel_map(_getpid, [0, 1, 2], num_workers=2)
        # Same persistent pool serves both calls (scheduling may route a
        # short second call to a subset of its workers).
        assert set(second) <= set(first)
        assert os.getpid() not in first
        shutdown_shared_executors()

    def test_explicit_executor(self):
        with SerialExecutor() as executor:
            result = parallel_map(_square, [3, 4], executor=executor)
        assert result == [9, 16]

    def test_default_worker_count_bounds(self):
        count = default_worker_count(cap=4)
        assert 1 <= count <= 4
