"""Differential tests: the compiled engine vs linear-search ground truth.

For every tree-producing algorithm (the five baselines and a trained
NeuroCuts policy) on ClassBench-style suites, the compiled
``classify_batch`` must agree with :meth:`RuleSet.classify` — the paper's
correctness oracle — on at least 10k generated packets per suite.

The oracle result is computed once per ruleset and shared across all
builders, so the suite stays fast despite the linear scans.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import pytest

from repro.baselines import (
    CutSplitBuilder,
    EffiCutsBuilder,
    HiCutsBuilder,
    HyperCutsBuilder,
    LinearSearchBuilder,
)
from repro.classbench import generate_classifier
from repro.engine import NUMBA_AVAILABLE, packets_to_array
from repro.neurocuts import NeuroCutsConfig, NeuroCutsTrainer
from repro.rules.ruleset import RuleSet
from repro.tree.lookup import TreeClassifier

#: Traversal-backend axis of the byte-identity test below.  ``"kernels"``
#: forces the dispatcher down the native-kernel code path (plain Python
#: without numba, jitted with it); ``"numba"`` additionally goes through
#: backend resolution where the JIT is installed.
BACKEND_AXIS = ["kernels"] + (["numba"] if NUMBA_AVAILABLE else [])

#: (seed family, rule count) pairs: one ACL, one firewall, one IPC suite.
SUITES = [("acl1", 150), ("fw5", 120), ("ipc1", 150)]

#: Packets per suite; the ISSUE's differential bar.
NUM_PACKETS = 10_000

_BUILDERS = {
    "HiCuts": HiCutsBuilder(binth=8),
    "HyperCuts": HyperCutsBuilder(binth=8),
    "EffiCuts": EffiCutsBuilder(binth=8),
    "CutSplit": CutSplitBuilder(binth=8),
    "LinearSearch": LinearSearchBuilder(),
}


@pytest.fixture(scope="module", params=SUITES, ids=lambda s: f"{s[0]}_{s[1]}")
def suite(request):
    """One materialised suite with its packets and oracle answers."""
    family, num_rules = request.param
    ruleset = generate_classifier(family, num_rules, seed=11)
    packets = ruleset.sample_packets(NUM_PACKETS, seed=13, rule_bias=0.85)
    oracle = [ruleset.classify(p) for p in packets]
    return ruleset, packets, oracle


def _assert_agreement(classifier: TreeClassifier, ruleset: RuleSet,
                      packets, oracle: List[Optional[object]]) -> None:
    compiled = classifier.classify_batch(packets, engine="compiled")
    assert len(compiled) == len(oracle)
    mismatches = [
        (i, want, got)
        for i, (want, got) in enumerate(zip(oracle, compiled))
        if (want.priority if want else None) != (got.priority if got else None)
    ]
    assert not mismatches, (
        f"{classifier.name}: {len(mismatches)} of {len(packets)} packets "
        f"disagree with linear search; first: {mismatches[0]}"
    )


@pytest.mark.parametrize("algorithm", sorted(_BUILDERS))
def test_baseline_compiled_matches_linear_search(suite, algorithm):
    ruleset, packets, oracle = suite
    classifier = _BUILDERS[algorithm].build(ruleset)
    _assert_agreement(classifier, ruleset, packets, oracle)


@pytest.mark.parametrize("backend", BACKEND_AXIS)
@pytest.mark.parametrize("algorithm", ["HiCuts", "EffiCuts"])
def test_kernel_backends_are_byte_identical(suite, algorithm, backend):
    """Every traversal backend returns the same match indices, bit for bit.

    The exactness contract the backend registry rests on: switching
    backends is a pure dispatch change, so the kernels must reproduce the
    numpy engine's answers — including cross-tree priority merges on the
    partitioned EffiCuts classifier — not merely agree on priorities.
    """
    ruleset, packets, oracle = suite
    classifier = _BUILDERS[algorithm].build(ruleset)
    compiled = classifier.compile()
    values = packets_to_array(packets)
    reference = compiled.match_indices(values)
    if backend == "numba":
        compiled.set_backend("numba")
    else:
        compiled.backend = "numba"  # kernels path without backend resolution
    try:
        result = compiled.match_indices(values)
    finally:
        compiled.set_backend("numpy")
    np.testing.assert_array_equal(result, reference)
    got = [compiled.rules[i].priority if i >= 0 else None
           for i in reference.tolist()]
    assert got == [m.priority if m else None for m in oracle]


def test_neurocuts_compiled_matches_linear_search(suite):
    ruleset, packets, oracle = suite
    config = NeuroCutsConfig.fast_test_config(
        max_timesteps_total=1500,
        timesteps_per_batch=500,
        partition_mode="simple",
        reward_scaling="log",
        time_space_coeff=0.5,
        seed=1,
    )
    result = NeuroCutsTrainer(ruleset, config).train()
    classifier = result.best_classifier()
    _assert_agreement(classifier, ruleset, packets, oracle)
