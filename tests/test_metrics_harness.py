"""Tests for the metrics package and the experiment harness utilities."""

import numpy as np
import pytest

from repro.baselines import HiCutsBuilder
from repro.classbench import generate_trace
from repro.metrics import (
    best_baseline,
    improvement,
    measure_lookup,
    median_by_algorithm,
    sorted_improvements,
    speedup,
    summarize_improvements,
)
from repro.harness import (
    PAPER,
    SMALL,
    TINY,
    comparison_table,
    format_table,
    get_scale,
    parallel_map,
    paper_vs_measured_table,
    series_table,
    summary_table,
    table1_rows,
)
from repro.harness.experiments import TABLE1_PAPER_DEFAULTS, TABLE1_SWEEPS
from repro.neurocuts import NeuroCutsConfig


class TestImprovementMetrics:
    def test_improvement_sign_convention(self):
        assert improvement(5, 10) == pytest.approx(0.5)      # we are 2x better
        assert improvement(10, 5) == pytest.approx(-1.0)     # we are 2x worse
        assert improvement(3, 0) == 0.0

    def test_speedup(self):
        assert speedup(10, 5) == pytest.approx(2.0)
        assert speedup(10, 0) == float("inf")

    def test_summarize_improvements(self):
        ours = {"a": 5.0, "b": 20.0, "c": 4.0}
        base = {"a": 10.0, "b": 10.0, "c": 8.0}
        summary = summarize_improvements(ours, base)
        assert summary.median == pytest.approx(0.5)
        assert summary.best == pytest.approx(0.5)
        assert summary.worst == pytest.approx(-1.0)
        assert summary.win_fraction == pytest.approx(2 / 3)
        assert set(summary.per_classifier) == {"a", "b", "c"}

    def test_summarize_requires_shared_keys(self):
        with pytest.raises(ValueError):
            summarize_improvements({"a": 1.0}, {"b": 1.0})

    def test_best_baseline_takes_minimum(self):
        per_alg = {
            "X": {"a": 5.0, "b": 3.0},
            "Y": {"a": 4.0, "b": 9.0},
            "ours": {"a": 1.0, "b": 1.0},
        }
        best = best_baseline(per_alg, exclude=("ours",))
        assert best == {"a": 4.0, "b": 3.0}

    def test_median_by_algorithm(self):
        per_alg = {"X": {"a": 1.0, "b": 3.0, "c": 5.0}}
        assert median_by_algorithm(per_alg)["X"] == 3.0

    def test_sorted_improvements(self):
        assert sorted_improvements({"a": 0.3, "b": -0.1, "c": 0.2}) == [-0.1, 0.2, 0.3]


class TestEmpiricalMetrics:
    def test_measure_lookup(self, small_acl_ruleset):
        classifier = HiCutsBuilder(binth=8).build(small_acl_ruleset)
        trace = generate_trace(small_acl_ruleset, num_packets=100, seed=0)
        metrics = measure_lookup(classifier, trace)
        assert metrics.num_packets == 100
        assert 1 <= metrics.mean_depth <= metrics.max_depth
        assert metrics.p50_depth <= metrics.p99_depth
        assert metrics.lookups_per_second > 0

    def test_empty_trace_rejected(self, small_acl_ruleset):
        classifier = HiCutsBuilder(binth=8).build(small_acl_ruleset)
        with pytest.raises(ValueError):
            measure_lookup(classifier, [])


class TestScales:
    def test_presets_exist(self):
        assert get_scale("tiny") is TINY
        assert get_scale("paper") is PAPER
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_tiny_specs_are_small(self):
        specs = TINY.specs()
        assert 0 < len(specs) <= 12
        assert all(spec.num_rules <= 200 for spec in specs)

    def test_paper_scale_matches_paper_budgets(self):
        config = PAPER.neurocuts_config()
        assert config.max_timesteps_total == 10_000_000
        assert tuple(config.hidden_sizes) == (512, 512)
        assert config.learning_rate == 5e-5

    def test_small_scale_config_valid(self):
        SMALL.neurocuts_config(time_space_coeff=0.5).validate()


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        assert "name" in text and "bb" in text
        assert len(text.splitlines()) == 4

    def test_comparison_table(self):
        values = {"X": {"a": 1.0, "b": 2.0}, "Y": {"a": 3.0, "b": 4.0}}
        text = comparison_table(values, metric="depth")
        assert "depth" in text and "X" in text and "a" in text

    def test_summary_table(self):
        text = summary_table({"ours vs best": {"median": 0.2, "mean": 0.1,
                                               "best": 0.5, "worst": -0.1,
                                               "win_fraction": 0.7}})
        assert "ours vs best" in text

    def test_series_table(self):
        text = series_table({"c": [0.0, 1.0], "time": [10.0, 5.0]})
        assert "c" in text and "time" in text

    def test_paper_vs_measured_table(self):
        text = paper_vs_measured_table([("median win", "18%", "12%")])
        assert "median win" in text


class TestTable1:
    def test_table1_defaults_agree(self):
        for name, paper_value, ours in table1_rows():
            assert ours == paper_value, f"{name}: {ours} != {paper_value}"

    def test_every_swept_value_is_accepted_by_config(self):
        for name, values in TABLE1_SWEEPS.items():
            for value in values:
                config = NeuroCutsConfig(**{name: value})
                assert getattr(config, name) == value

    def test_paper_defaults_cover_table(self):
        assert "learning_rate" in TABLE1_PAPER_DEFAULTS
        assert "hidden_sizes" in TABLE1_PAPER_DEFAULTS


class TestParallel:
    def test_serial_fallback(self):
        assert parallel_map(_square, [1, 2, 3], num_workers=1) == [1, 4, 9]

    def test_parallel_map_results_ordered(self):
        results = parallel_map(_square, list(range(6)), num_workers=2)
        assert results == [x * x for x in range(6)]


def _square(x: int) -> int:
    """Top-level helper so it is picklable for the process pool."""
    return x * x
