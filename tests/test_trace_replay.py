"""Golden-trace regression gates: replay checked-in traces, expect zero diffs.

The traces under ``tests/data/`` were recorded under the determinism
contract (synchronous swaps; see docs/traces.md), so the decisions they
carry are a pure function of the trace clock.  Replaying them through the
full serving stack — single-process and tenant-sharded, across mid-trace
hot swaps and a forced retrain — must reproduce every decision bit-for-bit.
A failure here means serving behaviour changed for recorded traffic: a real
regression, not flake.

Regenerate the fixtures only on a deliberate format/scenario change:
``PYTHONPATH=src python scripts/make_golden_traces.py``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.harness.serving import run_serving
from repro.serve.controller import RetrainPolicy
from repro.traces import (
    ServingTrace,
    diff_traces,
    read_trace,
    record_serving,
    replay_trace,
    trace_from_run,
)

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_CHURN = DATA_DIR / "acl1_churn.trace"
GOLDEN_RETRAIN = DATA_DIR / "acl1_retrain_churn.trace"


@pytest.fixture(scope="module")
def churn_trace():
    return read_trace(GOLDEN_CHURN)


@pytest.fixture(scope="module")
def retrain_trace():
    return read_trace(GOLDEN_RETRAIN)


class TestGoldenReplay:
    def test_single_process_replay_matches_golden(self, churn_trace):
        outcome = replay_trace(churn_trace)
        report = outcome.report
        assert report.is_exact, f"mismatches: {report.mismatches}"
        assert report.num_served == churn_trace.num_records
        # The trace carries mid-run churn, so the replay crossed hot swaps.
        assert report.counters["num_updates"] == 2
        assert report.counters["swaps"] == 2

    def test_sharded_replay_matches_golden(self, churn_trace):
        outcome = replay_trace(churn_trace, serving_workers=2,
                               serving_backend="thread")
        assert outcome.report.is_exact, \
            f"mismatches: {outcome.report.mismatches}"
        assert outcome.result.num_shards == 2

    def test_replay_across_forced_retrain(self, retrain_trace):
        """Decisions stay golden even when the replay retrains mid-trace.

        The quality gate is disabled so the tiny-budget retrain is adopted
        unconditionally — the point here is exactness across the adoption
        swap, not whether a 250-timestep tree beats the incumbent.
        """
        policy = RetrainPolicy(timesteps=250, max_iterations=1,
                               backend="serial", quality_gate=False,
                               seed=retrain_trace.seed)
        outcome = replay_trace(retrain_trace, retrain_threshold=12,
                               retrain_policy=policy)
        report = outcome.report
        assert report.is_exact, f"mismatches: {report.mismatches}"
        assert report.counters["retrains_installed"] >= 1
        assert report.counters["retrains_rejected"] == 0

    def test_replay_retrain_quality_gate_keeps_decisions_golden(
            self, retrain_trace):
        """With the gate armed a losing retrain is rejected, not adopted —
        and the replay still verifies exactly (no swap, no divergence)."""
        policy = RetrainPolicy(timesteps=250, max_iterations=1,
                               backend="serial", seed=retrain_trace.seed)
        outcome = replay_trace(retrain_trace, retrain_threshold=12,
                               retrain_policy=policy)
        report = outcome.report
        assert report.is_exact, f"mismatches: {report.mismatches}"
        counters = report.counters
        assert counters["retrains_triggered"] >= 1
        assert counters["retrains_installed"] \
            + counters["retrains_rejected"] \
            + counters["retrains_discarded"] == counters["retrains_triggered"]
        # Rejected retrains must not swap: each rule update swaps once and
        # each *installed* retrain swaps once, nothing else.
        assert counters["swaps"] == counters["num_updates"] \
            + counters["retrains_installed"]

    def test_replay_is_deterministic_across_runs(self, churn_trace):
        """Acceptance gate: two replays agree on every telemetry counter."""
        single = [replay_trace(churn_trace).report for _ in range(2)]
        assert single[0].is_exact and single[1].is_exact
        assert single[0].counters == single[1].counters
        sharded = [
            replay_trace(churn_trace, serving_workers=2,
                         serving_backend="serial").report
            for _ in range(2)
        ]
        assert sharded[0].is_exact and sharded[1].is_exact
        assert sharded[0].counters == sharded[1].counters

    def test_decisions_are_batching_invariant(self, churn_trace):
        """Golden decisions depend on epochs, not how packets batch."""
        for max_batch in (16, 64, 256):
            outcome = replay_trace(churn_trace, max_batch=max_batch)
            assert outcome.report.is_exact, \
                f"max_batch={max_batch}: {outcome.report.mismatches}"

    def test_ingest_enabled_replay_stays_bit_exact(self, churn_trace):
        """Trace replay bypasses admission timing: the trace clock is
        authoritative (its packets were already admitted when recorded), so
        even a draconian ingest config cannot drop, delay, or reorder a
        replayed packet — golden traces stay bit-exact and the ingest
        tallies stay zero (docs/ingest.md)."""
        from repro.ingest import IngestConfig

        draconian = IngestConfig(tenant_rate=1.0, tenant_burst=1,
                                 queue_limit=1)
        outcome = replay_trace(churn_trace, ingest=draconian)
        report = outcome.report
        assert report.is_exact, f"mismatches: {report.mismatches}"
        assert report.num_served == churn_trace.num_records
        assert report.counters["ingest_offered"] == 0
        assert report.counters["ingest_admitted"] == 0
        assert report.counters["ingest_throttled"] == 0
        assert report.counters["ingest_shed"] == 0
        # Identical counters to an ingest-free replay: the flag is inert
        # on the trace path by construction, not merely harmless.
        assert report.counters == replay_trace(churn_trace).report.counters


class TestChurnDeterminism:
    def test_run_serving_same_seed_produces_identical_epochs(self):
        """Two runs with one seed agree on churn and per-tenant epochs.

        The precondition for golden traces staying valid: the churn
        schedule (and therefore every epoch boundary) must be a pure
        function of the scenario seed.
        """
        def run():
            result = run_serving(num_tenants=2, families=("acl1",),
                                 num_rules=30, num_packets=400,
                                 num_flows=48, churn_events=2,
                                 background_swaps=False, seed=13)
            updates = [(u.tenant_id, u.time, u.adds, u.removes)
                       for u in result.workload.updates]
            epochs = {t: result.registry.slot(t).epoch
                      for t in result.registry.tenants()}
            return updates, epochs

        a, b = run(), run()
        assert a[0] == b[0], "churn schedules diverged for one seed"
        assert a[1] == b[1], "engine epochs diverged for one seed"


class TestHarnessTracePath:
    def test_run_serving_replays_from_file(self, churn_trace):
        result = run_serving(trace_path=GOLDEN_CHURN,
                             background_swaps=False, record_batches=True)
        assert result.report.num_requests == churn_trace.num_records
        exactness = result.verify_exactness()
        assert exactness.is_exact
        assert exactness.num_post_swap > 0

    def test_trace_replay_defaults_retrains_to_serial(self, churn_trace):
        """Armed-but-untriggered retrain loop on the replay default policy.

        Without an explicit policy, a trace replay must build a *serial*
        controller seeded from the trace (the determinism contract), not
        the generation path's thread-backend default.
        """
        result = run_serving(trace_path=churn_trace,
                             background_swaps=False, record_batches=True,
                             retrain_threshold=10_000)
        assert result.report.retrains_triggered == 0
        assert result.verify_exactness().is_exact

    def test_run_serving_accepts_loaded_trace(self, churn_trace):
        result = run_serving(trace_path=churn_trace,
                             background_swaps=False, record_batches=True,
                             serving_workers=2, serving_backend="serial")
        assert result.report.num_requests == churn_trace.num_records
        assert result.verify_exactness().is_exact


class TestRecording:
    def test_sharded_recording_equals_single_process(self, tmp_path):
        """The golden column is shard-invariant (seq survives the pickle)."""
        scenario = dict(num_tenants=2, families=("acl1",), num_rules=30,
                        num_packets=400, num_flows=64, churn_events=2,
                        seed=4)
        single = record_serving(tmp_path / "single.trace", **scenario)
        sharded = record_serving(tmp_path / "sharded.trace",
                                 serving_workers=2,
                                 serving_backend="serial", **scenario)
        assert np.array_equal(single.trace.records, sharded.trace.records)
        assert single.trace.updates == sharded.trace.updates
        assert single.trace.rulesets == sharded.trace.rulesets

    def test_rerecorded_replay_diffs_clean(self, churn_trace, tmp_path):
        """replay --output's trace is byte-equal in every compared field."""
        outcome = replay_trace(churn_trace)
        replayed = trace_from_run(outcome.result.workload,
                                  outcome.result.report,
                                  seed=churn_trace.seed,
                                  scenario=churn_trace.scenario)
        diff = diff_traces(churn_trace, replayed)
        assert diff.identical, "\n".join(diff.lines())

    def test_diff_flags_golden_divergence(self, churn_trace):
        records = churn_trace.records.copy()
        records["golden_matched"][5] = 1 - records["golden_matched"][5]
        records["golden_priority"][7] += 1
        other = ServingTrace(specs=churn_trace.specs,
                             rulesets=churn_trace.rulesets,
                             records=records,
                             updates=churn_trace.updates,
                             seed=churn_trace.seed,
                             scenario=churn_trace.scenario)
        diff = diff_traces(churn_trace, other)
        assert not diff.identical
        assert diff.num_golden_diffs == 2
        assert diff.num_record_diffs == 0

    def test_diff_names_differing_spec_fields(self, churn_trace):
        from dataclasses import replace

        other = ServingTrace(
            specs=[replace(churn_trace.specs[0], binth=4)]
            + churn_trace.specs[1:],
            rulesets=churn_trace.rulesets,
            records=churn_trace.records,
            updates=churn_trace.updates,
            seed=churn_trace.seed,
            scenario=churn_trace.scenario,
        )
        diff = diff_traces(churn_trace, other)
        assert not diff.identical
        assert any("binth: 8 != 4" in line for line in diff.header_diffs)


class TestTraceCLI:
    def test_record_replay_verify_diff_loop(self, tmp_path, capsys):
        from repro.cli import main

        recorded = tmp_path / "cli.trace"
        replayed = tmp_path / "cli-replayed.trace"
        code = main(["trace", "record", "--tenants", "2",
                     "--families", "acl1", "--num-rules", "30",
                     "--num-packets", "300", "--num-flows", "48",
                     "--churn-events", "1", "--seed", "2",
                     "--output", str(recorded)])
        assert code == 0
        assert "golden column: 300/300" in capsys.readouterr().out

        code = main(["trace", "replay", str(recorded), "--verify",
                     "--output", str(replayed)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 dropped, 0 misclassified" in out

        code = main(["trace", "diff", str(recorded), str(replayed)])
        assert code == 0
        assert "identical" in capsys.readouterr().out

        code = main(["trace", "inspect", str(recorded), "--head", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant-00-acl1" in out and "churn[0]" in out

    def test_diff_reports_differences(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.trace"
        b = tmp_path / "b.trace"
        record_serving(a, num_tenants=1, families=("acl1",), num_rules=20,
                       num_packets=100, num_flows=16, churn_events=0,
                       seed=1)
        record_serving(b, num_tenants=1, families=("acl1",), num_rules=20,
                       num_packets=100, num_flows=16, churn_events=0,
                       seed=2)
        code = main(["trace", "diff", str(a), str(b)])
        assert code == 1
        assert "differ" in capsys.readouterr().out

    def test_record_reports_unwritable_output_cleanly(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        code = main(["trace", "record", "--tenants", "1",
                     "--families", "acl1", "--num-rules", "15",
                     "--num-packets", "50", "--num-flows", "8",
                     "--churn-events", "0",
                     "--output", str(blocker / "x.trace")])
        assert code == 2
        assert "could not be written" in capsys.readouterr().err

    def test_replay_rejects_garbage_file(self, tmp_path, capsys):
        from repro.cli import main

        bogus = tmp_path / "bogus.trace"
        bogus.write_bytes(b"this is not a trace")
        code = main(["trace", "replay", str(bogus), "--verify"])
        assert code == 2
        assert "bad magic" in capsys.readouterr().err
