"""Native traversal kernels: backend registry, kernel tables, exactness.

The kernels in :mod:`repro.engine.kernels` are jitted with numba where it is
installed and run as plain Python over the same unstructured views where it
is not — byte-identical either way.  These tests therefore exercise the
kernel *code path* on every machine: FlatTree-level ``backend="numba"``
calls and a dispatcher whose ``backend`` attribute is forced to ``"numba"``
both route through the kernels regardless of whether the JIT is present.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import numpy as np
import pytest

from repro.baselines import EffiCutsBuilder, HiCutsBuilder
from repro.classbench import generate_classifier
from repro.engine import (
    ENGINE_BACKENDS,
    NUMBA_AVAILABLE,
    FlatTree,
    available_backends,
    packets_to_array,
    resolve_backend,
)
from repro.engine import kernels
from repro.engine.layout import (
    COL_CHILD_START,
    COL_KIND,
    COL_RULE_END,
    KIND_LEAF,
    NUM_NODE_COLUMNS,
)
from repro.exceptions import EngineBackendError
from repro.rules import Dimension, Packet, Rule, RuleSet
from repro.tree import CutAction, DecisionTree, TreeClassifier


@contextmanager
def kernel_path(compiled):
    """Force the dispatcher down the kernels code path.

    Bypasses :func:`resolve_backend` on purpose: the kernels are callable
    plain Python without numba, which is exactly what lets every machine
    run the differential below.
    """
    saved = compiled.backend
    compiled.backend = "numba"
    try:
        yield compiled
    finally:
        compiled.backend = saved


@pytest.fixture(scope="module")
def single_tree():
    ruleset = generate_classifier("acl1", 120, seed=3)
    classifier = HiCutsBuilder(binth=8).build(ruleset)
    packets = ruleset.sample_packets(600, seed=7, rule_bias=0.8)
    return classifier, packets_to_array(packets)


@pytest.fixture(scope="module")
def multi_tree():
    ruleset = generate_classifier("fw1", 120, seed=0)
    classifier = EffiCutsBuilder(binth=8).build(ruleset)
    packets = ruleset.sample_packets(600, seed=7, rule_bias=0.8)
    return classifier, packets_to_array(packets)


class TestBackendRegistry:
    def test_registry_names(self):
        assert ENGINE_BACKENDS == ("numpy", "numba", "auto")
        concrete = available_backends()
        assert concrete[0] == "numpy"
        assert ("numba" in concrete) == NUMBA_AVAILABLE

    def test_numpy_resolves_to_itself(self):
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(EngineBackendError, match="unknown engine backend"):
            resolve_backend("cython")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_explicit_numba_without_numba_raises(self, single_tree):
        classifier, _ = single_tree
        with pytest.raises(EngineBackendError, match="repro\\[native\\]"):
            resolve_backend("numba")
        with pytest.raises(EngineBackendError):
            classifier.compile().set_backend("numba")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_auto_falls_back_with_one_warning(self):
        kernels._warned_auto_fallback = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_backend("auto") == "numpy"
            assert resolve_backend("auto") == "numpy"
        runtime = [w for w in caught if w.category is RuntimeWarning]
        assert len(runtime) == 1
        assert "falling back" in str(runtime[0].message)

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="needs numba")
    def test_auto_prefers_numba(self):
        assert resolve_backend("auto") == "numba"

    def test_set_backend_is_pure_dispatch(self, single_tree):
        classifier, values = single_tree
        compiled = classifier.compile()
        before = compiled.match_indices(values)
        resolved = compiled.set_backend("auto")
        assert resolved in ("numpy", "numba")
        assert compiled.backend == resolved
        np.testing.assert_array_equal(compiled.match_indices(values), before)
        compiled.set_backend("numpy")


class TestKernelTables:
    def test_shape_dtype_and_contiguity(self, single_tree):
        classifier, _ = single_tree
        tree = classifier.compile().subtrees[0]
        tables = tree.kernel_tables()
        assert tables.nodes.shape == (tree.num_nodes, NUM_NODE_COLUMNS)
        for array in (tables.nodes, tables.leaf_lo, tables.leaf_hi,
                      tables.leaf_priority, tables.leaf_rule_index):
            assert array.dtype == np.int64
            assert array.flags["C_CONTIGUOUS"]
        assert tables.leaf_lo.shape == (tree.num_leaf_rules, 5)
        np.testing.assert_array_equal(tables.nodes[:, COL_KIND],
                                      tree.nodes["kind"])
        np.testing.assert_array_equal(tables.nodes[:, COL_CHILD_START],
                                      tree.nodes["child_start"])
        np.testing.assert_array_equal(tables.nodes[:, COL_RULE_END],
                                      tree.nodes["rule_end"])

    def test_tables_are_cached_per_tree(self, single_tree):
        classifier, _ = single_tree
        tree = classifier.compile().subtrees[0]
        assert tree.kernel_tables() is tree.kernel_tables()


class TestKernelExactness:
    @pytest.mark.parametrize("fixture", ["single_tree", "multi_tree"])
    def test_per_tree_descend_and_lookup_match_numpy(self, fixture, request):
        classifier, values = request.getfixturevalue(fixture)
        for tree in classifier.compile().subtrees:
            np.testing.assert_array_equal(
                tree.descend(values, backend="numba"), tree.descend(values))
            np.testing.assert_array_equal(
                tree.lookup(values, backend="numba"), tree.lookup(values))

    @pytest.mark.parametrize("fixture", ["single_tree", "multi_tree"])
    def test_match_indices_byte_identical(self, fixture, request):
        classifier, values = request.getfixturevalue(fixture)
        compiled = classifier.compile()
        reference = compiled.match_indices(values)
        with kernel_path(compiled):
            np.testing.assert_array_equal(compiled.match_indices(values),
                                          reference)

    def test_empty_batch(self, single_tree):
        classifier, _ = single_tree
        compiled = classifier.compile()
        empty = packets_to_array([])
        tree = compiled.subtrees[0]
        assert tree.descend(empty, backend="numba").shape == (0,)
        assert tree.lookup(empty, backend="numba").shape == (0,)
        with kernel_path(compiled):
            assert compiled.match_indices(empty).shape == (0,)
            assert compiled.classify_batch([]) == []

    def test_all_miss_batch(self):
        # Every rule pins protocol 6; UDP packets must miss on every
        # backend (no default wildcard rule to fall back to).
        rules = [
            Rule.from_fields(src_ip=(i * 16, (i + 1) * 16), protocol=(6, 7),
                             priority=i + 1, name=f"r{i}")
            for i in range(8)
        ]
        ruleset = RuleSet(rules, name="tcp-only")
        tree = DecisionTree(ruleset, leaf_threshold=2, prune_redundant=False)
        tree.apply_action(CutAction(dimension=Dimension.SRC_IP, num_cuts=4))
        tree.truncate()
        compiled = TreeClassifier(ruleset, [tree]).compile()
        misses = packets_to_array(
            [Packet(i * 16, 0, 0, 0, 17) for i in range(8)])
        reference = compiled.match_indices(misses)
        assert (reference == -1).all()
        with kernel_path(compiled):
            np.testing.assert_array_equal(compiled.match_indices(misses),
                                          reference)
        assert compiled.classify_batch(misses) == [None] * len(misses)


class TestDepthOverrun:
    @pytest.fixture()
    def corrupt_tree(self, single_tree):
        classifier, values = single_tree
        tree = classifier.compile().subtrees[0]
        assert tree.depth >= 2, "fixture tree too shallow to under-declare"
        # Same arrays, recorded depth of zero: a well-formed descent now
        # exceeds the declared bound, which both backends must refuse.
        return FlatTree(nodes=tree.nodes, leaf_rules=tree.leaf_rules,
                        depth=0, max_leaf_span=tree.max_leaf_span), values

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_descend_overrun_raises(self, corrupt_tree, backend):
        tree, values = corrupt_tree
        with pytest.raises(RuntimeError,
                           match="deeper than its recorded depth"):
            tree.descend(values, backend=backend)

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_lookup_overrun_raises(self, corrupt_tree, backend):
        tree, values = corrupt_tree
        with pytest.raises(RuntimeError,
                           match="deeper than its recorded depth"):
            tree.lookup(values, backend=backend)

    def test_match_into_overrun_raises(self, corrupt_tree):
        tree, values = corrupt_tree
        from repro.engine.layout import NO_MATCH_PRIORITY

        best_priority = np.full(len(values), NO_MATCH_PRIORITY,
                                dtype=np.int64)
        best_rule = np.full(len(values), -1, dtype=np.int64)
        with pytest.raises(RuntimeError,
                           match="deeper than its recorded depth"):
            kernels.match_into(tree, values, best_priority, best_rule)
