"""Tests for categorical distributions, optimisers, and checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ActorCriticMLP,
    Categorical,
    MultiCategorical,
    SGD,
    clip_gradients,
    load_checkpoint,
    save_checkpoint,
    softmax,
)


class TestCategorical:
    def test_probs_sum_to_one(self):
        dist = Categorical(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(dist.probs.sum(axis=1), 1.0)

    def test_log_prob_matches_probs(self):
        logits = np.array([[0.3, -1.2, 2.0]])
        dist = Categorical(logits)
        for action in range(3):
            assert dist.log_prob(np.array([action]))[0] == pytest.approx(
                np.log(dist.probs[0, action])
            )

    def test_mask_zeroes_invalid_actions(self):
        dist = Categorical(np.zeros((1, 4)), mask=np.array([1, 0, 1, 0]))
        assert dist.probs[0, 1] == pytest.approx(0.0)
        assert dist.probs[0, 3] == pytest.approx(0.0)
        assert dist.probs[0, [0, 2]].sum() == pytest.approx(1.0)

    def test_masked_actions_never_sampled(self):
        rng = np.random.default_rng(0)
        dist = Categorical(np.zeros((100, 3)),
                           mask=np.tile(np.array([1, 0, 1]), (100, 1)))
        samples = dist.sample(rng)
        assert not np.any(samples == 1)

    def test_entropy_of_uniform_is_log_n(self):
        dist = Categorical(np.zeros((1, 8)))
        assert dist.entropy()[0] == pytest.approx(np.log(8))

    def test_entropy_grad_matches_finite_differences(self):
        logits = np.array([[0.5, -0.3, 1.2, 0.0]])
        dist = Categorical(logits)
        analytic = dist.entropy_grad()
        eps = 1e-6
        for i in range(4):
            up = logits.copy(); up[0, i] += eps
            down = logits.copy(); down[0, i] -= eps
            numeric = (Categorical(up).entropy()[0] -
                       Categorical(down).entropy()[0]) / (2 * eps)
            assert analytic[0, i] == pytest.approx(numeric, abs=1e-5)

    def test_log_prob_grad_matches_finite_differences(self):
        logits = np.array([[0.1, 0.7, -0.4]])
        action = np.array([2])
        analytic = Categorical(logits).log_prob_grad(action)
        eps = 1e-6
        for i in range(3):
            up = logits.copy(); up[0, i] += eps
            down = logits.copy(); down[0, i] -= eps
            numeric = (Categorical(up).log_prob(action)[0] -
                       Categorical(down).log_prob(action)[0]) / (2 * eps)
            assert analytic[0, i] == pytest.approx(numeric, abs=1e-5)

    def test_kl_self_is_zero(self):
        dist = Categorical(np.array([[0.4, 1.0, -2.0]]))
        assert dist.kl(dist)[0] == pytest.approx(0.0)

    def test_mode_is_argmax(self):
        dist = Categorical(np.array([[0.1, 5.0, -1.0]]))
        assert dist.mode()[0] == 1


class TestMultiCategorical:
    def test_sizes_must_match_logits(self):
        with pytest.raises(ValueError):
            MultiCategorical(np.zeros((1, 5)), sizes=(3, 3))

    def test_log_prob_is_sum_of_components(self):
        flat = np.array([[0.1, 0.2, 0.3, -0.5, 0.5]])
        dist = MultiCategorical(flat, sizes=(3, 2))
        action = np.array([[1, 0]])
        separate = (Categorical(flat[:, :3]).log_prob(np.array([1]))[0]
                    + Categorical(flat[:, 3:]).log_prob(np.array([0]))[0])
        assert dist.log_prob(action)[0] == pytest.approx(separate)

    def test_entropy_is_sum(self):
        dist = MultiCategorical(np.zeros((1, 5)), sizes=(3, 2))
        assert dist.entropy()[0] == pytest.approx(np.log(3) + np.log(2))

    def test_sample_shapes_and_ranges(self):
        rng = np.random.default_rng(1)
        dist = MultiCategorical(np.zeros((10, 7)), sizes=(5, 2))
        samples = dist.sample(rng)
        assert samples.shape == (10, 2)
        assert samples[:, 0].max() < 5 and samples[:, 1].max() < 2

    def test_grad_layout_matches_flat_logits(self):
        dist = MultiCategorical(np.zeros((2, 5)), sizes=(3, 2))
        grad = dist.log_prob_grad(np.array([[0, 1], [2, 0]]))
        assert grad.shape == (2, 5)
        assert dist.entropy_grad().shape == (2, 5)


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        params = {"w": np.array([1.0, 2.0])}
        SGD(learning_rate=0.1).step(params, {"w": np.array([1.0, -1.0])})
        assert np.allclose(params["w"], [0.9, 2.1])

    def test_sgd_momentum_accumulates(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        params = {"w": np.zeros(1)}
        opt.step(params, {"w": np.ones(1)})
        first = params["w"].copy()
        opt.step(params, {"w": np.ones(1)})
        second_step = params["w"] - first
        assert abs(second_step[0]) > abs(first[0])

    def test_adam_reduces_quadratic_loss(self):
        opt = Adam(learning_rate=0.05)
        params = {"w": np.array([5.0])}
        for _ in range(200):
            grad = {"w": 2 * params["w"]}
            opt.step(params, grad)
        assert abs(params["w"][0]) < 0.5

    def test_adam_state_roundtrip(self):
        opt = Adam(learning_rate=0.01)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([0.5])})
        state = opt.state_dict()
        other = Adam(learning_rate=0.01)
        other.load_state_dict(state)
        assert other._t == opt._t

    def test_clip_gradients_scales_norm(self):
        grads = {"a": np.array([3.0, 4.0])}
        clipped = clip_gradients(grads, max_norm=1.0)
        norm = np.sqrt((clipped["a"] ** 2).sum())
        assert norm == pytest.approx(1.0)
        assert clip_gradients(grads, None) is grads


class TestSoftmaxAndCheckpoints:
    def test_softmax_stability_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 1001.0, 999.0]]))
        assert np.all(np.isfinite(probs))
        assert probs.sum() == pytest.approx(1.0)

    def test_checkpoint_roundtrip(self, tmp_path):
        model = ActorCriticMLP(obs_size=6, action_sizes=(3, 2),
                               hidden_sizes=(8,), seed=4)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        obs = np.random.default_rng(0).normal(size=(3, 6))
        a_logits, a_values = model.forward(obs)
        b_logits, b_values = restored.forward(obs)
        assert np.allclose(a_logits, b_logits)
        assert np.allclose(a_values, b_values)

    def test_checkpoint_missing_file_raises(self, tmp_path):
        from repro.exceptions import CheckpointError

        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "missing.npz")
