"""Tests for incremental classifier updates and tree-shape visualisation."""

import pytest

from repro.rules import Dimension, Packet, Rule, RuleSet
from repro.tree import CutAction, PartitionAction, TreeClassifier, build_with_policy
from repro.neurocuts import (
    IncrementalUpdater,
    compare_profiles,
    profile_tree,
    render_profile,
)


@pytest.fixture
def built_tree(small_acl_ruleset):
    return build_with_policy(
        small_acl_ruleset,
        lambda node: CutAction(Dimension.SRC_IP, 8),
        leaf_threshold=8,
    )


class TestIncrementalUpdates:
    def test_add_rule_lands_in_intersecting_leaves(self, built_tree):
        updater = IncrementalUpdater(built_tree)
        new_rule = Rule.from_fields(dst_port=(4443, 4444), priority=10 ** 6,
                                    name="new")
        touched = updater.add_rule(new_rule)
        assert touched >= 1
        assert updater.stats.rules_added == 1
        # The updated tree must classify packets hitting the new rule correctly.
        packet = built_tree.ruleset.sample_matching_packet(new_rule)
        match = built_tree.classify(packet)
        assert match is not None and match.priority == new_rule.priority

    def test_updated_tree_still_matches_linear_search(self, built_tree):
        updater = IncrementalUpdater(built_tree)
        new_rule = Rule.from_prefixes(src_ip="77.1.0.0/16", priority=10 ** 6)
        updater.add_rule(new_rule)
        classifier = TreeClassifier(built_tree.ruleset, [built_tree])
        checked, mismatches = classifier.validate(
            built_tree.ruleset.sample_packets(150, seed=9)
        )
        assert mismatches == 0

    def test_remove_rule(self, built_tree):
        updater = IncrementalUpdater(built_tree)
        victim = built_tree.ruleset[0]
        touched = updater.remove_rule(victim)
        assert touched >= 1
        assert victim not in built_tree.ruleset.rules
        assert all(victim not in leaf.rules for leaf in built_tree.leaves())

    def test_remove_rule_purges_internal_nodes(self, built_tree):
        updater = IncrementalUpdater(built_tree)
        victim = built_tree.ruleset[0]
        updater.remove_rule(victim)
        assert all(victim not in node.rules for node in built_tree.nodes())
        assert updater.stats.rules_removed == 1

    def test_remove_rule_still_matches_linear_search(self, built_tree):
        updater = IncrementalUpdater(built_tree)
        victim = built_tree.ruleset[len(built_tree.ruleset) // 2]
        updater.remove_rule(victim)
        classifier = TreeClassifier(built_tree.ruleset, [built_tree])
        _, mismatches = classifier.validate(
            built_tree.ruleset.sample_packets(150, seed=11)
        )
        assert mismatches == 0

    def test_remove_unknown_rule_is_a_noop(self, built_tree):
        updater = IncrementalUpdater(built_tree)
        stranger = Rule.from_fields(dst_port=(7, 8), priority=10 ** 7,
                                    name="stranger")
        version = built_tree.version
        assert updater.remove_rule(stranger) == 0
        assert updater.stats.rules_removed == 0
        # No structural change, so the compiled-engine cache stays valid.
        assert built_tree.version == version

    def test_add_then_remove_restores_linear_search_agreement(self, built_tree):
        updater = IncrementalUpdater(built_tree)
        rule = Rule.from_prefixes(src_ip="93.4.0.0/16", priority=10 ** 6)
        updater.add_rule(rule)
        assert updater.remove_rule(rule) >= 1
        classifier = TreeClassifier(built_tree.ruleset, [built_tree])
        _, mismatches = classifier.validate(
            built_tree.ruleset.sample_packets(150, seed=13)
        )
        assert mismatches == 0

    def test_retraining_threshold(self, built_tree):
        updater = IncrementalUpdater(built_tree, retrain_threshold=2)
        assert not updater.needs_retraining()
        updater.add_rule(Rule.from_fields(dst_port=(1, 2), priority=10 ** 6))
        updater.add_rule(Rule.from_fields(dst_port=(3, 4), priority=10 ** 6 + 1))
        assert updater.needs_retraining()

    def test_update_routed_through_partition(self, small_fw_ruleset):
        def policy(node):
            if node.depth == 0:
                return PartitionAction(Dimension.SRC_IP, 0.5)
            return CutAction(Dimension.DST_IP, 8)

        # Depth cap: a fixed cutting policy cannot separate fw-style rules
        # that wildcard DstIP, so uncapped construction would blow up.
        tree = build_with_policy(small_fw_ruleset, policy, leaf_threshold=8,
                                 max_depth=3, max_actions=300)
        updater = IncrementalUpdater(tree)
        # A rule that is "small" in SRC_IP must be routed to the small child only.
        new_rule = Rule.from_prefixes(src_ip="88.9.0.0/16", priority=10 ** 6)
        updater.add_rule(new_rule)
        root = tree.root
        small_child, large_child = root.children
        assert new_rule in small_child.rules
        assert new_rule not in large_child.rules


class TestCompiledEngineInvalidation:
    """End-to-end: incremental updates must invalidate the compiled engine.

    The engine caches the compiled flat-array form keyed on the trees'
    structural version; ``IncrementalUpdater`` bumps the version through
    ``mark_modified`` so the next batched lookup recompiles instead of
    serving stale tables.
    """

    def _packets(self, ruleset, seed=17, n=200):
        return ruleset.sample_packets(n, seed=seed)

    def test_add_rule_bumps_version_and_recompiles(self, built_tree):
        classifier = TreeClassifier(built_tree.ruleset, [built_tree])
        compiled_before = classifier.compile()
        version_before = built_tree.version
        assert classifier.compile() is compiled_before  # cache hit

        updater = IncrementalUpdater(built_tree)
        new_rule = Rule.from_fields(dst_port=(5555, 5556), priority=10 ** 6,
                                    name="hot")
        updater.add_rule(new_rule)
        assert built_tree.version > version_before

        compiled_after = classifier.compile()
        assert compiled_after is not compiled_before
        # The recompiled engine serves the new rule on its matching flow.
        packet = built_tree.ruleset.sample_matching_packet(new_rule)
        [match] = compiled_after.classify_batch([packet])
        assert match is not None and match.priority == new_rule.priority

    def test_remove_rule_recompile_matches_interpreter(self, built_tree):
        classifier = TreeClassifier(built_tree.ruleset, [built_tree])
        victim = built_tree.ruleset[0]
        packet = built_tree.ruleset.sample_matching_packet(victim)
        compiled_before = classifier.compile()
        [before] = compiled_before.classify_batch([packet])
        assert before is not None and before.priority == victim.priority

        IncrementalUpdater(built_tree).remove_rule(victim)
        compiled_after = classifier.compile()
        assert compiled_after is not compiled_before
        # Compiled batch results agree with the interpreter on a fresh trace.
        packets = self._packets(built_tree.ruleset)
        compiled = compiled_after.classify_batch(packets)
        interpreted = classifier.classify_batch(packets, engine="interpreter")
        for got, want in zip(compiled, interpreted):
            got_priority = got.priority if got else None
            want_priority = want.priority if want else None
            assert got_priority == want_priority
        # And the removed rule no longer wins anywhere.
        assert all(m is None or m.priority != victim.priority for m in compiled)

    def test_flow_cache_does_not_serve_stale_results(self, built_tree):
        classifier = TreeClassifier(built_tree.ruleset, [built_tree])
        new_rule = Rule.from_fields(dst_port=(6666, 6667), priority=10 ** 6,
                                    name="late")
        packet = built_tree.ruleset.sample_matching_packet(new_rule)
        compiled = classifier.compile(flow_cache_size=64)
        # Warm the cache with the pre-update result for this flow.
        compiled.classify_batch([packet])

        IncrementalUpdater(built_tree).add_rule(new_rule)
        recompiled = classifier.compile()
        # The recompile preserved the caching configuration but dropped the
        # stale entries: the flow now resolves to the new rule.
        assert recompiled.flow_cache is not None
        [match] = recompiled.classify_batch([packet])
        assert match is not None and match.priority == new_rule.priority


class TestVisualize:
    def test_profile_counts_match_tree(self, built_tree):
        profile = profile_tree(built_tree)
        assert profile.num_nodes == built_tree.num_nodes()
        assert profile.depth == built_tree.depth()
        assert sum(level.num_nodes for level in profile.levels) == profile.num_nodes
        assert profile.levels[0].num_nodes == 1

    def test_cut_dimension_histogram(self, built_tree):
        profile = profile_tree(built_tree)
        total_cuts = sum(
            count
            for level in profile.levels
            for count in level.cut_dimension_counts.values()
        )
        assert total_cuts == sum(1 for _ in built_tree.internal_nodes())
        assert profile.dominant_dimensions(top_k=1) == ["SRC_IP"]

    def test_render_profile_text(self, built_tree):
        text = render_profile(profile_tree(built_tree))
        assert "level" in text and "#" in text

    def test_compare_profiles_series(self, built_tree):
        profiles = [profile_tree(built_tree)] * 3
        series = compare_profiles(profiles)
        assert len(series["depth"]) == 3
        assert series["num_nodes"][0] == built_tree.num_nodes()
