"""Tests for the RL substrate: spaces, batches, advantages, PPO, policy."""

import numpy as np
import pytest

from repro.nn import ActorCriticMLP
from repro.rl import (
    Box,
    Discrete,
    ExperienceBuilder,
    PPOConfig,
    PPOLearner,
    Policy,
    SampleBatch,
    TupleSpace,
    discounted_returns,
    gae_advantages,
    normalize_advantages,
    one_step_advantages,
)


class TestSpaces:
    def test_discrete_contains_and_sample(self):
        space = Discrete(4)
        rng = np.random.default_rng(0)
        assert space.contains(0) and space.contains(3)
        assert not space.contains(4)
        assert 0 <= space.sample(rng) < 4

    def test_box_contains(self):
        space = Box(low=0.0, high=1.0, shape=(3,))
        assert space.contains(np.array([0.0, 0.5, 1.0]))
        assert not space.contains(np.array([0.0, 2.0, 1.0]))
        assert not space.contains(np.zeros(4))

    def test_tuple_space(self):
        space = TupleSpace(spaces=(Discrete(5), Discrete(2)))
        assert space.sizes == (5, 2)
        assert space.contains((4, 1))
        assert not space.contains((5, 0))
        rng = np.random.default_rng(0)
        assert space.contains(space.sample(rng))


class TestSampleBatch:
    def _make(self, n=10, masks=True):
        rng = np.random.default_rng(0)
        return SampleBatch(
            obs=rng.normal(size=(n, 4)),
            actions=rng.integers(0, 2, size=(n, 2)),
            returns=rng.normal(size=n),
            value_preds=rng.normal(size=n),
            logp_old=rng.normal(size=n),
            action_masks=[np.ones((n, 3), dtype=bool),
                          np.ones((n, 2), dtype=bool)] if masks else None,
        )

    def test_length_validation(self):
        with pytest.raises(ValueError):
            SampleBatch(
                obs=np.zeros((3, 2)), actions=np.zeros((2, 1)),
                returns=np.zeros(3), value_preds=np.zeros(3), logp_old=np.zeros(3),
            )

    def test_advantages(self):
        batch = self._make()
        assert np.allclose(batch.advantages, batch.returns - batch.value_preds)

    def test_take_and_minibatches_cover_batch(self):
        batch = self._make(10)
        rng = np.random.default_rng(0)
        pieces = list(batch.minibatches(3, rng))
        assert sum(len(p) for p in pieces) == 10
        assert all(p.action_masks is not None for p in pieces)

    def test_concat(self):
        a, b = self._make(4), self._make(6)
        merged = SampleBatch.concat([a, b])
        assert len(merged) == 10
        assert merged.action_masks[0].shape == (10, 3)

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            SampleBatch.concat([])

    def test_experience_builder(self):
        builder = ExperienceBuilder()
        for i in range(5):
            builder.add(
                obs=np.full(4, i), action=np.array([i % 2, 0]), ret=float(i),
                value_pred=0.5, logp=-1.0,
                masks=[np.ones(3, dtype=bool), np.ones(2, dtype=bool)],
            )
        batch = builder.build()
        assert len(batch) == 5
        assert batch.obs.shape == (5, 4)
        assert batch.action_masks[1].shape == (5, 2)

    def test_experience_builder_empty_rejected(self):
        with pytest.raises(ValueError):
            ExperienceBuilder().build()


class TestAdvantages:
    def test_one_step_advantages_unnormalised(self):
        adv = one_step_advantages(np.array([3.0, 1.0]), np.array([1.0, 1.0]),
                                  normalize=False)
        assert np.allclose(adv, [2.0, 0.0])

    def test_normalize_zero_mean_unit_std(self):
        adv = normalize_advantages(np.array([1.0, 2.0, 3.0, 4.0]))
        assert adv.mean() == pytest.approx(0.0, abs=1e-9)
        assert adv.std() == pytest.approx(1.0, rel=1e-6)

    def test_normalize_constant_vector_safe(self):
        adv = normalize_advantages(np.array([2.0, 2.0, 2.0]))
        assert np.allclose(adv, 0.0)

    def test_discounted_returns(self):
        returns = discounted_returns([1.0, 1.0, 1.0], gamma=0.5)
        assert np.allclose(returns, [1.75, 1.5, 1.0])

    def test_gae_matches_mc_when_lambda_one_and_zero_values(self):
        rewards = [1.0, 2.0, 3.0]
        adv = gae_advantages(rewards, [0.0, 0.0, 0.0], gamma=1.0, lam=1.0)
        assert np.allclose(adv, [6.0, 5.0, 3.0])

    def test_gae_length_mismatch(self):
        with pytest.raises(ValueError):
            gae_advantages([1.0], [1.0, 2.0])


class TestPPO:
    def test_config_validation(self):
        with pytest.raises(Exception):
            PPOConfig(learning_rate=-1).validate()
        with pytest.raises(Exception):
            PPOConfig(clip_param=2.0).validate()
        PPOConfig().validate()

    def _contextual_bandit_batch(self, model, rng, n=256):
        """A 2-context bandit: action 0 is right in context 0, action 1 in 1."""
        from repro.nn.distributions import MultiCategorical

        obs = np.zeros((n, 4))
        contexts = rng.integers(0, 2, size=n)
        obs[np.arange(n), contexts] = 1.0
        logits, values = model.forward(obs)
        dist = MultiCategorical(logits, model.action_sizes)
        actions = dist.sample(rng)
        rewards = np.where(actions[:, 0] == contexts, 1.0, -1.0)
        return SampleBatch(
            obs=obs, actions=actions, returns=rewards,
            value_preds=values, logp_old=dist.log_prob(actions),
        ), contexts

    def test_ppo_learns_contextual_bandit(self):
        rng = np.random.default_rng(0)
        model = ActorCriticMLP(obs_size=4, action_sizes=(2, 2),
                               hidden_sizes=(16,), seed=0)
        config = PPOConfig(learning_rate=0.01, num_sgd_iters=5,
                           sgd_minibatch_size=64, kl_target=10.0)
        learner = PPOLearner(model, config, seed=0)
        for _ in range(15):
            batch, _ = self._contextual_bandit_batch(model, rng)
            stats = learner.update(batch)
        # After training, the greedy action should match the context.
        obs = np.eye(4)[:2]
        logits, _ = model.forward(obs)
        first_component = logits[:, :2]
        assert np.argmax(first_component[0]) == 0
        assert np.argmax(first_component[1]) == 1
        assert stats.entropy >= 0.0

    def test_kl_early_stop(self):
        model = ActorCriticMLP(obs_size=4, action_sizes=(2, 2),
                               hidden_sizes=(8,), seed=0)
        config = PPOConfig(learning_rate=0.5, num_sgd_iters=30,
                           sgd_minibatch_size=32, kl_target=1e-4)
        learner = PPOLearner(model, config, seed=0)
        rng = np.random.default_rng(1)
        batch, _ = self._contextual_bandit_batch(model, rng, n=128)
        stats = learner.update(batch)
        assert stats.num_sgd_iters_run < 30


class TestPolicy:
    def test_action_space_mismatch_rejected(self):
        model = ActorCriticMLP(obs_size=4, action_sizes=(2, 2), hidden_sizes=(8,))
        with pytest.raises(ValueError):
            Policy(model, TupleSpace(spaces=(Discrete(3), Discrete(2))))

    def test_act_respects_masks(self):
        model = ActorCriticMLP(obs_size=4, action_sizes=(3, 2), hidden_sizes=(8,))
        policy = Policy(model, TupleSpace(spaces=(Discrete(3), Discrete(2))), seed=0)
        masks = [np.array([True, False, False]), np.array([False, True])]
        for _ in range(20):
            decision = policy.act(np.zeros(4), masks=masks)
            assert decision.action == (0, 1)
            assert np.isfinite(decision.log_prob)
            assert len(decision.masks) == 2

    def test_deterministic_action_is_mode(self):
        model = ActorCriticMLP(obs_size=4, action_sizes=(3, 2), hidden_sizes=(8,))
        policy = Policy(model, TupleSpace(spaces=(Discrete(3), Discrete(2))), seed=0)
        action = policy.act_deterministic(np.zeros(4))
        assert len(action) == 2

    def test_value_returns_float(self):
        model = ActorCriticMLP(obs_size=4, action_sizes=(2, 2), hidden_sizes=(8,))
        policy = Policy(model, TupleSpace(spaces=(Discrete(2), Discrete(2))))
        assert isinstance(policy.value(np.zeros(4)), float)
