"""Tests for the serving workload generators (`repro.workloads`)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.classbench import generate_classifier
from repro.workloads import (
    ChurnConfig,
    FlowTraceConfig,
    FlowTraceGenerator,
    build_workload,
    generate_flow_trace,
    make_tenant_specs,
)


@pytest.fixture(scope="module")
def ruleset():
    return generate_classifier("acl1", 60, seed=4)


class TestFlowTraceConfig:
    @pytest.mark.parametrize("overrides", [
        {"num_packets": 0},
        {"num_flows": 0},
        {"zipf_alpha": 0.0},
        {"rule_bias": 1.5},
        {"mean_rate_pps": 0.0},
        {"peak_rate_pps": 1.0, "mean_rate_pps": 2.0},
        {"mean_burst": 0.5},
    ])
    def test_rejects_invalid_configs(self, overrides):
        with pytest.raises(ValueError):
            FlowTraceConfig(**overrides)


class TestFlowTraceGenerator:
    def test_deterministic_for_a_seed(self, ruleset):
        config = FlowTraceConfig(num_packets=400, num_flows=50, seed=3)
        first = FlowTraceGenerator(ruleset, config).generate()
        second = FlowTraceGenerator(ruleset, config).generate()
        assert [(e.time, e.packet, e.flow_id) for e in first] == \
            [(e.time, e.packet, e.flow_id) for e in second]
        different = FlowTraceGenerator(
            ruleset, FlowTraceConfig(num_packets=400, num_flows=50, seed=4)
        ).generate()
        assert [e.packet for e in first] != [e.packet for e in different]

    def test_packets_of_a_flow_share_one_header(self, ruleset):
        trace = generate_flow_trace(ruleset, num_packets=600, num_flows=40,
                                    seed=1)
        by_flow = {}
        for entry in trace:
            by_flow.setdefault(entry.flow_id, set()).add(entry.packet)
        assert all(len(headers) == 1 for headers in by_flow.values())

    def test_zipf_concentrates_traffic(self, ruleset):
        trace = generate_flow_trace(ruleset, num_packets=4000, num_flows=200,
                                    zipf_alpha=1.3, seed=2)
        counts = Counter(e.flow_id for e in trace)
        top10 = sum(c for _, c in counts.most_common(10))
        # Under Zipf(1.3) the 10 hottest of 200 flows carry far more than
        # the 5% a uniform draw would give them.
        assert top10 / len(trace) > 0.3

    def test_arrivals_increase_and_are_bursty(self, ruleset):
        config = FlowTraceConfig(num_packets=2000, num_flows=100,
                                 mean_rate_pps=10_000, peak_rate_pps=200_000,
                                 mean_burst=20.0, seed=5)
        trace = FlowTraceGenerator(ruleset, config).generate()
        times = [e.time for e in trace]
        assert all(b > a for a, b in zip(times, times[1:]))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        # Bursty arrivals: the median gap (inside bursts) is much smaller
        # than the mean gap (stretched by inter-burst idle).
        median_gap = sorted(gaps)[len(gaps) // 2]
        assert median_gap < mean_gap / 2

    def test_rule_bias_zero_still_generates(self, ruleset):
        trace = generate_flow_trace(ruleset, num_packets=50, num_flows=10,
                                    seed=0, rule_bias=0.0)
        assert len(trace) == 50


class TestScenario:
    def test_make_tenant_specs_cycles_families(self):
        specs = make_tenant_specs(5, families=("acl1", "fw1"), num_rules=30)
        assert [s.seed_name for s in specs] == \
            ["acl1", "fw1", "acl1", "fw1", "acl1"]
        assert len({s.tenant_id for s in specs}) == 5
        assert len({s.seed for s in specs}) == 5  # per-tenant rulesets differ

    def test_make_tenant_specs_validates(self):
        with pytest.raises(ValueError):
            make_tenant_specs(0)
        with pytest.raises(ValueError):
            make_tenant_specs(2, families=("nope",))
        with pytest.raises(ValueError):
            make_tenant_specs(2, families=())

    def test_build_workload_merges_by_time(self):
        specs = make_tenant_specs(3, num_rules=40, seed=1)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=900, num_flows=90, seed=2)
        )
        times = [r.time for r in workload.requests]
        assert times == sorted(times)
        tenants = {r.tenant_id for r in workload.requests}
        assert tenants == {s.tenant_id for s in specs}
        assert set(workload.rulesets) == tenants

    def test_tenant_zipf_share_skews_traffic(self):
        specs = make_tenant_specs(3, num_rules=40, seed=1)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=1200, num_flows=90, seed=2),
            tenant_zipf_alpha=1.5,
        )
        counts = Counter(r.tenant_id for r in workload.requests)
        ordered = [counts[s.tenant_id] for s in specs]
        assert ordered[0] > ordered[1] > ordered[2]

    def test_churn_events_are_valid(self):
        specs = make_tenant_specs(2, num_rules=50, seed=3)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=800, num_flows=80, seed=3),
            churn=ChurnConfig(num_events=4, adds_per_event=3,
                              removes_per_event=2),
        )
        assert len(workload.updates) == 4
        duration = workload.duration
        seen_removed = set()
        for update in workload.updates:
            assert 0.0 <= update.time <= duration
            ruleset = workload.rulesets[update.tenant_id]
            live_priorities = {r.priority for r in ruleset.rules}
            for rule in update.removes:
                # Removals target rules that existed and weren't removed yet,
                # and never the default rule.
                assert rule not in seen_removed
                assert rule.num_wildcard_dims() < 5
                seen_removed.add(rule)
            for rule in update.adds:
                # Additions are fresh high-priority rules.
                assert rule.priority not in live_priorities
                assert rule.priority > max(live_priorities)

    def test_churn_priorities_are_distinct(self):
        specs = make_tenant_specs(1, num_rules=40, seed=0)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=400, num_flows=40, seed=0),
            churn=ChurnConfig(num_events=3, adds_per_event=4,
                              removes_per_event=0),
        )
        added = [r.priority for u in workload.updates for r in u.adds]
        assert len(added) == len(set(added))

    def test_churn_config_validates(self):
        with pytest.raises(ValueError):
            ChurnConfig(num_events=-1)
        with pytest.raises(ValueError):
            ChurnConfig(window=(0.9, 0.1))

    def test_churn_schedule_is_deterministic_for_a_seed(self):
        """Same seed, same schedule — rule-for-rule, time-for-time.

        This is the precondition golden traces rest on: if two
        ``build_workload`` calls with one seed could disagree on the churn
        schedule, a recorded trace's churn sidecar (and hence its golden
        column) would drift from what a fresh run serves.
        """
        def draw():
            specs = make_tenant_specs(2, num_rules=40, seed=6)
            return build_workload(
                specs, FlowTraceConfig(num_packets=600, num_flows=60, seed=6),
                churn=ChurnConfig(num_events=3, adds_per_event=3,
                                  removes_per_event=2),
            )

        a, b = draw(), draw()
        assert a.updates == b.updates
        assert [r for r in a.requests] == [r for r in b.requests]

    def test_requests_carry_flow_ids_and_stream_positions(self):
        specs = make_tenant_specs(2, num_rules=40, seed=1)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=300, num_flows=30, seed=1)
        )
        assert [r.seq for r in workload.requests] == \
            list(range(len(workload.requests)))
        assert all(r.flow_id >= 0 for r in workload.requests)
