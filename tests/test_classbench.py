"""Tests for the ClassBench-style workload generator, seeds, traces and suite."""

import pytest

from repro.classbench import (
    ClassBenchGenerator,
    ClassifierSpec,
    DEFAULT_SCALE_SIZES,
    FAMILIES,
    PAPER_SCALE_SIZES,
    SEEDS,
    TraceConfig,
    TraceGenerator,
    family_of,
    generate_classifier,
    generate_trace,
    get_seed,
    iter_suite,
    seed_names,
    suite_specs,
)
from repro.rules import Dimension


class TestSeeds:
    def test_twelve_families(self):
        assert len(SEEDS) == 12
        assert set(seed_names()) == set(SEEDS)

    def test_family_groups(self):
        assert len(FAMILIES["acl"]) == 5
        assert len(FAMILIES["fw"]) == 5
        assert len(FAMILIES["ipc"]) == 2

    def test_get_seed_unknown_raises(self):
        with pytest.raises(KeyError):
            get_seed("nope1")

    def test_port_weights_are_positive(self):
        for seed in SEEDS.values():
            assert all(w >= 0 for w in seed.src_port.weights())
            assert sum(seed.dst_port.weights()) > 0

    def test_describe(self):
        assert "acl" in get_seed("acl3").describe()


class TestGenerator:
    def test_generates_requested_size(self):
        ruleset = generate_classifier("acl1", 50, seed=0)
        assert len(ruleset) == 50

    def test_always_has_default_rule(self):
        for family in ("acl1", "fw3", "ipc2"):
            ruleset = generate_classifier(family, 30, seed=2)
            assert ruleset.has_default_rule()

    def test_deterministic_for_same_seed(self):
        a = generate_classifier("fw1", 40, seed=9)
        b = generate_classifier("fw1", 40, seed=9)
        assert [r.ranges for r in a] == [r.ranges for r in b]

    def test_different_seeds_differ(self):
        a = generate_classifier("fw1", 40, seed=1)
        b = generate_classifier("fw1", 40, seed=2)
        assert [r.ranges for r in a] != [r.ranges for r in b]

    def test_rules_are_unique(self):
        ruleset = generate_classifier("ipc1", 80, seed=3)
        assert len({r.ranges for r in ruleset}) == len(ruleset)

    def test_fw_family_more_wildcarded_than_acl(self):
        acl = generate_classifier("acl1", 200, seed=0).stats()
        fw = generate_classifier("fw5", 200, seed=0).stats()
        assert fw.wildcard_fraction[Dimension.SRC_IP] > \
            acl.wildcard_fraction[Dimension.SRC_IP]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ClassBenchGenerator(get_seed("acl1")).generate(0)


class TestTraces:
    def test_trace_length_and_determinism(self, small_acl_ruleset):
        a = generate_trace(small_acl_ruleset, num_packets=30, seed=4)
        b = generate_trace(small_acl_ruleset, num_packets=30, seed=4)
        assert len(a) == 30
        assert a == b

    def test_rule_biased_packets_match_rules(self, small_acl_ruleset):
        config = TraceConfig(num_packets=50, rule_bias=1.0, seed=0)
        packets = TraceGenerator(small_acl_ruleset, config).generate()
        assert all(small_acl_ruleset.classify(p) is not None for p in packets)

    def test_pareto_skew_concentrates_traffic(self, small_acl_ruleset):
        config = TraceConfig(num_packets=300, rule_bias=1.0,
                             pareto_shape=2.0, seed=0)
        packets = TraceGenerator(small_acl_ruleset, config).generate()
        matched = [small_acl_ruleset.classify(p).priority for p in packets]
        # A heavily skewed trace should reuse a small number of rules a lot.
        top_share = max(matched.count(p) for p in set(matched)) / len(matched)
        assert top_share > 0.1


class TestSuite:
    def test_default_suite_has_36_entries(self):
        specs = suite_specs()
        assert len(specs) == 36
        labels = {spec.label for spec in specs}
        assert "acl1_1k" in labels and "fw5_100k" in labels and "ipc2_10k" in labels

    def test_paper_scale_sizes(self):
        assert PAPER_SCALE_SIZES == {"1k": 1000, "10k": 10_000, "100k": 100_000}
        assert set(DEFAULT_SCALE_SIZES) == set(PAPER_SCALE_SIZES)

    def test_spec_materialize_matches_size(self):
        spec = ClassifierSpec(seed_name="acl2", scale="1k", num_rules=40)
        ruleset = spec.materialize()
        assert len(ruleset) == 40
        assert ruleset.name == "acl2_1k"

    def test_iter_suite_lazy(self):
        specs = suite_specs(scale_sizes={"1k": 20}, scales=("1k",),
                            families=("acl1", "fw1"))
        labels = [label for label, ruleset in iter_suite(specs)]
        assert labels == ["acl1_1k", "fw1_1k"]

    def test_family_of(self):
        assert family_of("acl3_10k") == "acl"
        assert family_of("fw5_1k") == "fw"
        assert family_of("ipc2_100k") == "ipc"
        with pytest.raises(KeyError):
            family_of("bogus_1k")
