"""Light tests of the figure runners (micro budgets, structure only).

The benchmarks run the figure experiments at meaningful budgets; these tests
only verify the runners wire the pieces together correctly, so they use a
single tiny classifier and a few hundred training steps.
"""

import dataclasses

import pytest

from repro.classbench import ClassifierSpec
from repro.harness import TINY, run_figure10, run_suite_comparison
from repro.harness.experiments import BASELINE_NAMES


@pytest.fixture(scope="module")
def micro_scale():
    """A scale so small the runners finish in a few seconds."""
    return dataclasses.replace(
        TINY,
        families=("acl1",),
        neurocuts_timesteps=600,
        neurocuts_batch=300,
        neurocuts_rollout_limit=150,
        neurocuts_hidden=(16, 16),
    )


@pytest.fixture(scope="module")
def micro_specs(micro_scale):
    return [ClassifierSpec(seed_name="acl1", scale="1k", num_rules=50, seed=0)]


class TestSuiteComparison:
    def test_comparison_includes_all_algorithms(self, micro_scale, micro_specs):
        result = run_suite_comparison(
            micro_scale, metric="classification_time", specs=micro_specs,
            neurocuts_config=micro_scale.neurocuts_config(),
        )
        assert set(result.values) == set(BASELINE_NAMES) | {"NeuroCuts"}
        assert set(result.medians) == set(result.values)
        rows = result.rows()
        assert len(rows) == 1
        label, per_alg = rows[0]
        assert label == "acl1_1k"
        assert all(value >= 1 for value in per_alg.values())
        summary = result.neurocuts_vs_best_baseline
        assert -20.0 < summary.median < 1.0

    def test_bytes_metric_variant(self, micro_scale, micro_specs):
        result = run_suite_comparison(
            micro_scale, metric="bytes_per_rule", specs=micro_specs,
            neurocuts_config=micro_scale.neurocuts_config(time_space_coeff=0.0,
                                                          reward_scaling="log"),
        )
        assert result.metric == "bytes_per_rule"
        assert all(v > 0 for values in result.values.values()
                   for v in values.values())


class TestFigure10Runner:
    def test_improvements_cover_every_spec(self, micro_scale, micro_specs):
        result = run_figure10(micro_scale, specs=micro_specs)
        assert set(result.space_improvement.per_classifier) == {"acl1_1k"}
        assert set(result.time_improvement.per_classifier) == {"acl1_1k"}
        assert "acl1_1k" in result.neurocuts["bytes_per_rule"]
        assert "acl1_1k" in result.efficuts["bytes_per_rule"]


class TestServing:
    def test_run_serving_reports_and_verifies(self):
        from repro.harness import run_serving

        result = run_serving(num_tenants=2, num_rules=50, num_packets=1000,
                             num_flows=100, churn_events=1,
                             background_swaps=False, record_batches=True,
                             seed=4)
        report = result.report
        assert report.num_requests == len(result.workload.requests)
        assert report.swaps == 1 and report.num_updates == 1
        assert report.pps > 0
        assert len(result.rows()) >= 8
        assert len(result.tenant_rows()) == 2
        exactness = result.verify_exactness()
        assert exactness.is_exact
        assert exactness.num_checked == report.num_requests
        assert exactness.num_post_swap > 0

    def test_verify_exactness_requires_recording(self):
        from repro.harness import run_serving

        result = run_serving(num_tenants=1, num_rules=40, num_packets=200,
                             num_flows=40, churn_events=0, seed=1)
        with pytest.raises(ValueError):
            result.verify_exactness()


class TestThroughput:
    def test_run_throughput_reports_every_algorithm(self, micro_scale,
                                                    micro_specs):
        from repro.harness import run_throughput

        result = run_throughput(micro_scale, specs=micro_specs,
                                num_packets=2000,
                                algorithms=("HiCuts", "EffiCuts"))
        assert {row.algorithm for row in result.rows} == {"HiCuts", "EffiCuts"}
        for row in result.rows:
            assert row.interpreter_pps > 0
            assert row.compiled_pps > 0
            assert row.compiled_memory_bytes > 0
            assert row.num_subtrees >= 1
        assert result.median_speedup() > 0
        assert len(result.table_rows()) == len(result.rows)
