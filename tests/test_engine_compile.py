"""Unit tests for the compiled dataplane engine.

Covers the flat-array layout, compilation of every action kind (cuts,
multicuts, splits, partitions), the multi-tree dispatcher, the LRU flow
cache, cache invalidation on tree mutation, and the auto-compile path of
``TreeClassifier.classify_batch``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CutSplitBuilder,
    EffiCutsBuilder,
    HiCutsBuilder,
    HyperCutsBuilder,
    LinearSearchBuilder,
)
from repro.classbench import generate_classifier
from repro.engine import (
    KIND_CUT,
    KIND_LEAF,
    NODE_DTYPE,
    RULE_DTYPE,
    CompiledClassifier,
    FlowCache,
    compile_classifier,
    compile_tree,
    packets_to_array,
)
from repro.neurocuts import IncrementalUpdater
from repro.rules import Dimension, Packet, Rule, RuleSet
from repro.tree import CutAction, DecisionTree, SplitAction, TreeClassifier
from repro.tree.lookup import AUTO_COMPILE_THRESHOLD


@pytest.fixture(scope="module")
def acl_classifier():
    ruleset = generate_classifier("acl1", 120, seed=3)
    return HiCutsBuilder(binth=8).build(ruleset)


class TestFlatLayout:
    def test_structured_arrays_and_contiguous_children(self, acl_classifier):
        compiled = acl_classifier.compile()
        tree = compiled.subtrees[0]
        assert tree.nodes.dtype == NODE_DTYPE
        assert tree.leaf_rules.dtype == RULE_DTYPE
        internal = tree.nodes[tree.nodes["kind"] != KIND_LEAF]
        # Children occupy contiguous spans strictly after their parent.
        for row in internal:
            assert row["num_children"] >= 2
            assert row["child_start"] > 0
            assert row["child_start"] + row["num_children"] <= len(tree.nodes)
        leaves = tree.nodes[tree.nodes["kind"] == KIND_LEAF]
        assert (leaves["rule_end"] >= leaves["rule_start"]).all()

    def test_leaf_rules_sorted_by_priority(self, acl_classifier):
        compiled = acl_classifier.compile()
        for tree in compiled.subtrees:
            leaves = tree.nodes[tree.nodes["kind"] == KIND_LEAF]
            for row in leaves:
                span = tree.leaf_rules["priority"][
                    row["rule_start"]:row["rule_end"]
                ]
                assert (np.diff(span) <= 0).all()

    def test_single_leaf_tree_is_vectorised_linear_search(self):
        ruleset = generate_classifier("ipc1", 40, seed=5)
        classifier = LinearSearchBuilder().build(ruleset)
        compiled = classifier.compile()
        assert compiled.num_subtrees == 1
        assert compiled.subtrees[0].num_nodes == 1
        assert compiled.subtrees[0].nodes["kind"][0] == KIND_LEAF
        packets = ruleset.sample_packets(200, seed=9)
        for packet, match in zip(packets, compiled.classify_batch(packets)):
            expected = ruleset.classify(packet)
            assert (match.priority if match else None) == \
                (expected.priority if expected else None)

    def test_cut_arithmetic_handles_uneven_spans(self):
        # A 10-wide protocol range cut 4 ways: children of widths 3,3,2,2.
        rules = [
            Rule.from_fields(protocol=(p, p + 1), priority=10 - p, name=f"r{p}")
            for p in range(10)
        ]
        ruleset = RuleSet(rules, name="uneven")
        tree = DecisionTree(ruleset, leaf_threshold=3, prune_redundant=False)
        tree.apply_action(SplitAction(dimension=Dimension.PROTOCOL,
                                      split_point=10))
        # The [0, 10) child is next in DFS order; 4 cuts give widths 3,3,2,2.
        tree.apply_action(CutAction(dimension=Dimension.PROTOCOL, num_cuts=4))
        tree.truncate()
        classifier = TreeClassifier(ruleset, [tree])
        compiled = classifier.compile()
        for proto in range(10):
            packet = Packet(0, 0, 0, 0, proto)
            expected = ruleset.classify(packet)
            actual = compiled.classify(packet)
            assert actual is not None and actual.priority == expected.priority


class TestDispatcher:
    @pytest.mark.parametrize("builder_cls", [
        HiCutsBuilder, HyperCutsBuilder, EffiCutsBuilder, CutSplitBuilder,
    ])
    def test_every_baseline_compiles_and_agrees(self, builder_cls):
        ruleset = generate_classifier("fw5", 90, seed=2)
        classifier = builder_cls(binth=8).build(ruleset)
        compiled = compile_classifier(classifier)
        packets = ruleset.sample_packets(400, seed=4)
        expected = classifier.classify_batch(packets, engine="interpreter")
        actual = compiled.classify_batch(packets)
        for want, got in zip(expected, actual):
            assert (want.priority if want else None) == \
                (got.priority if got else None)

    def test_partitioned_classifier_expands_to_multiple_search_trees(self):
        ruleset = generate_classifier("fw1", 120, seed=0)
        classifier = EffiCutsBuilder(binth=8).build(ruleset)
        compiled = classifier.compile()
        assert compiled.num_subtrees >= 2
        assert compiled.memory_bytes() > 0
        assert f"subtrees={compiled.num_subtrees}" in compiled.describe()

    def test_lookup_batch_accepts_raw_header_matrix(self, acl_classifier):
        packets = acl_classifier.ruleset.sample_packets(128, seed=1)
        values = packets_to_array(packets)
        indices = acl_classifier.compile().match_indices(values)
        assert indices.shape == (128,)
        assert indices.dtype == np.int64

    def test_empty_batch(self, acl_classifier):
        assert acl_classifier.compile().classify_batch([]) == []

    def test_compile_tree_reuses_shared_rule_pool(self, acl_classifier):
        rule_slot, rules_out = {}, []
        flats = []
        for tree in acl_classifier.trees:
            flats.extend(compile_tree(tree, rule_slot, rules_out))
        assert len(rules_out) == len(rule_slot)
        compiled = CompiledClassifier(subtrees=flats, rules=rules_out)
        packet = acl_classifier.ruleset.sample_packets(1, seed=0)[0]
        want = acl_classifier.classify(packet)
        got = compiled.classify(packet)
        assert (want.priority if want else None) == \
            (got.priority if got else None)


class TestFlowCache:
    def test_lru_eviction_and_stats(self):
        cache = FlowCache(capacity=2)
        cache.put((1, 1, 1, 1, 1), 10)
        cache.put((2, 2, 2, 2, 2), 20)
        assert cache.get((1, 1, 1, 1, 1)) == 10  # refreshes key 1
        cache.put((3, 3, 3, 3, 3), 30)  # evicts key 2
        assert cache.get((2, 2, 2, 2, 2)) is None
        assert cache.get((3, 3, 3, 3, 3)) == 30
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_cached_results_match_uncached(self, acl_classifier):
        packets = acl_classifier.ruleset.sample_packets(100, seed=6)
        replay = packets + packets  # every flow repeats within the batch
        uncached = acl_classifier.compile().classify_batch(replay)
        compiled = acl_classifier.compile(flow_cache_size=256)
        cached = compiled.classify_batch(replay)
        assert [r.priority if r else None for r in cached] == \
            [r.priority if r else None for r in uncached]
        # Intra-batch duplicates resolve through per-flow dedup, so the
        # first batch records one miss per distinct flow...
        assert compiled.flow_cache.stats.misses == len(packets)
        # ...and a replayed batch is answered entirely from the cache.
        again = compiled.classify_batch(replay)
        assert compiled.flow_cache.stats.hits == len(replay)
        assert [r.priority if r else None for r in again] == \
            [r.priority if r else None for r in uncached]

    def test_clear_counts_invalidations_separately(self):
        cache = FlowCache(capacity=4)
        cache.put((1, 1, 1, 1, 1), 10)
        cache.put((2, 2, 2, 2, 2), 20)
        dropped = cache.clear()
        assert dropped == 2 and len(cache) == 0
        assert cache.stats.invalidations == 2
        assert cache.stats.evictions == 0  # LRU evictions stay distinct
        assert cache.clear() == 0

    def test_stats_merge_and_as_dict(self):
        from repro.engine import FlowCacheStats

        total = FlowCacheStats(hits=3, misses=1, evictions=2, invalidations=1)
        total.merge(FlowCacheStats(hits=1, misses=1, evictions=0,
                                   invalidations=4))
        assert (total.hits, total.misses) == (4, 2)
        assert (total.evictions, total.invalidations) == (2, 5)
        as_dict = total.as_dict()
        assert as_dict["hit_rate"] == pytest.approx(4 / 6)
        assert as_dict["invalidations"] == 5

    def test_attach_and_detach(self, acl_classifier):
        compiled = acl_classifier.compile()
        cache = compiled.attach_flow_cache(16)
        assert compiled.flow_cache is cache
        compiled.detach_flow_cache()
        assert compiled.flow_cache is None

    def test_repeated_compile_keeps_cache_and_entries(self, acl_classifier):
        acl_classifier.invalidate_compiled()
        compiled = acl_classifier.compile(flow_cache_size=32)
        cache = compiled.flow_cache
        packet = acl_classifier.ruleset.sample_packets(1, seed=5)[0]
        compiled.classify(packet)
        assert len(cache) == 1
        # A cache-hit compile with the same capacity must not reset the cache.
        assert acl_classifier.compile(flow_cache_size=32).flow_cache is cache
        assert acl_classifier.compile().flow_cache is cache
        assert len(cache) == 1
        # Recompiling after a tree change drops entries but keeps caching on.
        acl_classifier.trees[0].mark_modified()
        fresh = acl_classifier.compile()
        assert fresh.flow_cache is not None
        assert fresh.flow_cache.capacity == 32
        assert len(fresh.flow_cache) == 0

    def test_bench_restores_caller_flow_cache(self, acl_classifier):
        from repro.engine import bench_classifier

        compiled = acl_classifier.compile()
        caller_cache = compiled.attach_flow_cache(64)
        packets = acl_classifier.ruleset.sample_packets(300, seed=8)
        bench_classifier(acl_classifier, packets, flow_cache_size=16,
                         repeats=1)
        assert compiled.flow_cache is caller_cache


class TestClassifierIntegration:
    def test_compile_is_cached_until_tree_changes(self, acl_classifier):
        first = acl_classifier.compile()
        assert acl_classifier.compile() is first
        acl_classifier.trees[0].mark_modified()
        assert acl_classifier.compile() is not first

    def test_incremental_update_invalidates_compiled(self):
        ruleset = generate_classifier("acl2", 60, seed=1)
        classifier = HiCutsBuilder(binth=8).build(ruleset)
        stale = classifier.compile()
        updater = IncrementalUpdater(classifier.trees[0])
        top = max(r.priority for r in ruleset) + 1
        new_rule = Rule.wildcard(priority=top, name="hot")
        assert updater.add_rule(new_rule) > 0
        fresh = classifier.compile()
        assert fresh is not stale
        packet = ruleset.sample_packets(1, seed=2)[0]
        assert fresh.classify(packet).priority == top

    def test_classify_batch_auto_compiles_large_batches(self, acl_classifier):
        acl_classifier.invalidate_compiled()
        small = acl_classifier.ruleset.sample_packets(
            AUTO_COMPILE_THRESHOLD - 1, seed=7)
        acl_classifier.classify_batch(small)
        assert acl_classifier._compiled is None  # interpreter path
        large = acl_classifier.ruleset.sample_packets(
            AUTO_COMPILE_THRESHOLD, seed=7)
        auto = acl_classifier.classify_batch(large)
        assert acl_classifier._compiled is not None
        interp = acl_classifier.classify_batch(large, engine="interpreter")
        assert [r.priority if r else None for r in auto] == \
            [r.priority if r else None for r in interp]

    def test_classify_batch_rejects_unknown_engine(self, acl_classifier):
        with pytest.raises(ValueError):
            acl_classifier.classify_batch([], engine="gpu")

    def test_builder_build_compiled(self):
        ruleset = generate_classifier("acl1", 50, seed=8)
        compiled = HiCutsBuilder(binth=8).build_compiled(ruleset)
        assert isinstance(compiled, CompiledClassifier)
        packet = ruleset.sample_packets(1, seed=3)[0]
        expected = ruleset.classify(packet)
        got = compiled.classify(packet)
        assert (got.priority if got else None) == \
            (expected.priority if expected else None)
