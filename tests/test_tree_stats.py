"""Tests for tree statistics: the paper's time/space aggregation equations."""

import pytest

from repro.rules import Dimension, Rule, RuleSet
from repro.tree import (
    CHILD_POINTER_BYTES,
    CutAction,
    DecisionTree,
    NODE_HEADER_BYTES,
    PartitionAction,
    RULE_POINTER_BYTES,
    build_with_policy,
    compute_stats,
    node_space_cost,
    subtree_space,
    subtree_time,
)


@pytest.fixture
def ruleset_for_stats():
    rules = [
        Rule.from_prefixes(src_ip="10.0.0.0/8", priority=4),
        Rule.from_prefixes(src_ip="20.0.0.0/8", priority=3),
        Rule.from_fields(dst_port=(80, 81), priority=2),
        Rule.wildcard(priority=1),
    ]
    return RuleSet(rules, name="stats")


class TestLeafCosts:
    def test_single_leaf_time_is_one(self, ruleset_for_stats):
        tree = DecisionTree(ruleset_for_stats, leaf_threshold=10)
        assert subtree_time(tree.root) == 1

    def test_single_leaf_space_counts_rules(self, ruleset_for_stats):
        tree = DecisionTree(ruleset_for_stats, leaf_threshold=10)
        expected = NODE_HEADER_BYTES + RULE_POINTER_BYTES * len(ruleset_for_stats)
        assert subtree_space(tree.root) == expected
        assert node_space_cost(tree.root) == expected


class TestCutAggregation:
    def test_cut_time_is_max_over_children(self, ruleset_for_stats):
        tree = DecisionTree(ruleset_for_stats, leaf_threshold=1)
        tree.apply_action(CutAction(Dimension.SRC_IP, 4))
        tree.truncate()
        child_times = [subtree_time(child) for child in tree.root.children]
        assert subtree_time(tree.root) == 1 + max(child_times)

    def test_cut_space_is_sum_over_children(self, ruleset_for_stats):
        tree = DecisionTree(ruleset_for_stats, leaf_threshold=1)
        tree.apply_action(CutAction(Dimension.SRC_IP, 4))
        tree.truncate()
        child_space = sum(subtree_space(child) for child in tree.root.children)
        own = NODE_HEADER_BYTES + CHILD_POINTER_BYTES * len(tree.root.children)
        assert subtree_space(tree.root) == own + child_space


class TestPartitionAggregation:
    def test_partition_time_is_sum_over_children(self, ruleset_for_stats):
        tree = DecisionTree(ruleset_for_stats, leaf_threshold=1)
        tree.apply_action(PartitionAction(Dimension.SRC_IP, 0.5))
        tree.truncate()
        child_times = [subtree_time(child) for child in tree.root.children]
        assert subtree_time(tree.root) == 1 + sum(child_times)


class TestComputeStats:
    def test_stats_bundle_consistency(self, small_acl_ruleset):
        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 8),
            leaf_threshold=8,
        )
        stats = compute_stats(tree)
        assert stats.num_nodes == tree.num_nodes()
        assert stats.num_leaves == tree.num_leaves()
        assert stats.depth == tree.depth()
        # With one tree and unit node costs, classification time = depth + 1.
        assert stats.classification_time == stats.depth + 1
        assert stats.bytes_per_rule == pytest.approx(
            stats.memory_bytes / len(small_acl_ruleset)
        )
        assert stats.rule_replication >= 1.0
        assert set(stats.as_dict()) >= {"classification_time", "bytes_per_rule"}

    def test_deeper_tree_costs_more_time(self, small_fw_ruleset):
        shallow = build_with_policy(
            small_fw_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 32),
            leaf_threshold=8,
            max_depth=2,
            max_actions=200,
        )
        deep = build_with_policy(
            small_fw_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 2),
            leaf_threshold=8,
            max_depth=8,
            max_actions=400,
        )
        assert compute_stats(deep).classification_time >= \
            compute_stats(shallow).classification_time
