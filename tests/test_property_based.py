"""Property-based tests (hypothesis) on the core data structures.

These check the invariants everything else relies on: rules match exactly the
packets inside their hypercube, cuts tile a node's box without losing rules,
trees classify identically to linear search for arbitrary rule sets, and the
distribution gradients stay consistent with their probabilities.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import EffiCutsBuilder, HiCutsBuilder
from repro.classbench import generate_classifier, seed_names
from repro.engine import packets_to_array
from repro.rules import DIMENSIONS, FIELD_RANGES, Packet, Rule, RuleSet
from repro.rules.fields import Dimension, prefix_to_range
from repro.tree import CUT_SIZES, CutAction, DecisionTree, Node, build_with_policy
from repro.tree.node import remove_redundant_rules
from repro.nn.distributions import Categorical
from repro.workloads import generate_flow_trace

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


@st.composite
def ranges_for_dim(draw, dim: Dimension):
    """A random non-empty half-open range within a dimension's bounds."""
    lo_bound, hi_bound = FIELD_RANGES[dim]
    lo = draw(st.integers(min_value=lo_bound, max_value=hi_bound - 1))
    hi = draw(st.integers(min_value=lo + 1, max_value=hi_bound))
    return (lo, hi)


@st.composite
def rules(draw, priority=0):
    """A random rule with arbitrary (not necessarily prefix) ranges."""
    rule_ranges = tuple(draw(ranges_for_dim(dim)) for dim in DIMENSIONS)
    return Rule(ranges=rule_ranges, priority=priority)


@st.composite
def rulesets(draw, min_rules=2, max_rules=12):
    """A random classifier terminated by a default rule."""
    count = draw(st.integers(min_value=min_rules, max_value=max_rules))
    rule_list = [draw(rules(priority=count - i)) for i in range(count - 1)]
    rule_list.append(Rule.wildcard(priority=0))
    return RuleSet(rule_list, name="hypothesis", reassign_priorities=True)


@st.composite
def packets(draw):
    values = tuple(
        draw(st.integers(min_value=FIELD_RANGES[d][0],
                         max_value=FIELD_RANGES[d][1] - 1))
        for d in DIMENSIONS
    )
    return Packet.from_values(values)


# --------------------------------------------------------------------------- #
# Rule properties
# --------------------------------------------------------------------------- #


@given(rule=rules(), packet=packets())
@settings(max_examples=200, deadline=None)
def test_rule_matches_iff_packet_inside_every_range(rule, packet):
    inside = all(lo <= v < hi for v, (lo, hi) in zip(packet, rule.ranges))
    assert rule.matches(packet) == inside


@given(rule=rules())
@settings(max_examples=100, deadline=None)
def test_rule_clip_to_own_box_is_identity(rule):
    clipped = rule.clip_to(rule.ranges)
    assert clipped is not None
    assert clipped.ranges == rule.ranges


@given(rule=rules())
@settings(max_examples=100, deadline=None)
def test_coverage_fraction_bounds(rule):
    for dim in DIMENSIONS:
        fraction = rule.coverage_fraction(dim)
        assert 0.0 < fraction <= 1.0
        assert rule.is_wildcard(dim) == (fraction == 1.0)


@given(value=st.integers(min_value=0, max_value=(1 << 32) - 1),
       prefix_len=st.integers(min_value=0, max_value=32))
@settings(max_examples=200, deadline=None)
def test_prefix_range_contains_exactly_prefix_matches(value, prefix_len):
    lo, hi = prefix_to_range(value, prefix_len, bits=32)
    assert hi - lo == 1 << (32 - prefix_len)
    if prefix_len > 0:
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        assert lo == value & mask
    assert lo <= value < hi or prefix_len == 0


# --------------------------------------------------------------------------- #
# Ruleset / classification properties
# --------------------------------------------------------------------------- #


@given(ruleset=rulesets(), packet=packets())
@settings(max_examples=100, deadline=None)
def test_classify_returns_highest_priority_match(ruleset, packet):
    match = ruleset.classify(packet)
    assert match is not None  # default rule guarantees a match
    better = [r for r in ruleset if r.matches(packet) and r.priority > match.priority]
    assert not better


@given(ruleset=rulesets())
@settings(max_examples=30, deadline=None)
def test_tree_agrees_with_linear_search(ruleset):
    # Keep the tree small: heavily overlapping random rules cannot be
    # separated below the leaf threshold, so depth/action caps are what stop
    # construction (a truncated tree is still an exact classifier).
    tree = build_with_policy(
        ruleset,
        lambda node: CutAction(Dimension.SRC_IP, 4),
        leaf_threshold=4,
        max_depth=5,
        max_actions=300,
    )
    for packet in ruleset.sample_packets(20, seed=0):
        expected = ruleset.classify(packet)
        actual = tree.classify(packet)
        assert (actual.priority if actual else None) == \
            (expected.priority if expected else None)


# --------------------------------------------------------------------------- #
# Engine differential properties on generated workloads
# --------------------------------------------------------------------------- #


@given(family=st.sampled_from(sorted(seed_names())),
       num_rules=st.integers(min_value=16, max_value=60),
       seed=st.integers(min_value=0, max_value=10 ** 4),
       efficuts=st.booleans())
@settings(max_examples=15, deadline=None)
def test_generated_workloads_classify_identically_everywhere(
        family, num_rules, seed, efficuts):
    """Interpreter, compiled engine, and linear search agree packet-for-packet
    on any generated (family, size, seed) workload — the exactness invariant
    the serving layer is built on."""
    ruleset = generate_classifier(family, num_rules, seed=seed)
    builder = EffiCutsBuilder(binth=8) if efficuts else HiCutsBuilder(binth=8)
    classifier = builder.build(ruleset)
    packets = [entry.packet for entry in
               generate_flow_trace(ruleset, num_packets=96, num_flows=24,
                                   seed=seed)]
    linear = [ruleset.classify(p) for p in packets]
    interpreted = classifier.classify_batch(packets, engine="interpreter")
    compiled = classifier.classify_batch(packets, engine="compiled")

    def priorities(matches):
        return [m.priority if m else None for m in matches]

    assert priorities(interpreted) == priorities(linear)
    assert priorities(compiled) == priorities(linear)

    # The native-kernel traversal backend returns byte-identical match
    # indices (plain-Python kernels without numba, jitted with it).
    engine = classifier.compile()
    values = packets_to_array(packets)
    reference = engine.match_indices(values)
    engine.backend = "numba"  # kernels path regardless of JIT availability
    try:
        kernel_result = engine.match_indices(values)
    finally:
        engine.backend = "numpy"
    assert (kernel_result == reference).all()


# --------------------------------------------------------------------------- #
# Node / cut properties
# --------------------------------------------------------------------------- #


@given(ruleset=rulesets(),
       dim=st.sampled_from(list(Dimension)),
       num_cuts=st.sampled_from(CUT_SIZES))
@settings(max_examples=60, deadline=None)
def test_cut_children_tile_the_parent_range(ruleset, dim, num_cuts):
    node = Node(ranges=tuple(FIELD_RANGES[d] for d in DIMENSIONS),
                rules=list(ruleset.rules))
    children = node.apply(CutAction(dim, num_cuts))
    child_ranges = [child.range_for(dim) for child in children]
    assert child_ranges[0][0] == FIELD_RANGES[dim][0]
    assert child_ranges[-1][1] == FIELD_RANGES[dim][1]
    for (_, prev_hi), (next_lo, _) in zip(child_ranges, child_ranges[1:]):
        assert prev_hi == next_lo
    # No rule that intersects the parent vanishes from every child it overlaps,
    # unless it is redundant there (covered by a higher-priority rule).
    for rule in node.rules:
        holders = [c for c in children if rule in c.rules]
        if not holders:
            intersecting = [c for c in children if rule.intersects(c.ranges)]
            for child in intersecting:
                clipped = rule.clip_to(child.ranges)
                assert any(
                    other.priority > rule.priority
                    and other.clip_to(child.ranges) is not None
                    and other.clip_to(child.ranges).covers(clipped)
                    for other in child.rules
                )


@given(ruleset=rulesets())
@settings(max_examples=60, deadline=None)
def test_redundant_rule_removal_preserves_classification(ruleset):
    box = tuple(FIELD_RANGES[d] for d in DIMENSIONS)
    pruned = remove_redundant_rules(list(ruleset.rules), box)
    pruned_set = RuleSet(pruned, name="pruned") if pruned else None
    assert pruned_set is not None
    for packet in ruleset.sample_packets(10, seed=1):
        full = ruleset.classify(packet)
        reduced = pruned_set.classify(packet)
        assert (reduced.priority if reduced else None) == \
            (full.priority if full else None)


# --------------------------------------------------------------------------- #
# Distribution properties
# --------------------------------------------------------------------------- #


@given(logits=st.lists(st.floats(min_value=-5, max_value=5),
                       min_size=2, max_size=8))
@settings(max_examples=100, deadline=None)
def test_categorical_probabilities_normalised(logits):
    dist = Categorical(np.array([logits]))
    assert np.isclose(dist.probs.sum(), 1.0)
    assert dist.entropy()[0] >= -1e-9
    assert dist.entropy()[0] <= np.log(len(logits)) + 1e-9


@given(logits=st.lists(st.floats(min_value=-5, max_value=5),
                       min_size=2, max_size=6),
       action_seed=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=100, deadline=None)
def test_categorical_logprob_grad_sums_to_zero(logits, action_seed):
    dist = Categorical(np.array([logits]))
    action = np.array([action_seed % len(logits)])
    grad = dist.log_prob_grad(action)
    # d/dz sum over a softmax's log-prob gradient is always zero.
    assert np.isclose(grad.sum(), 0.0, atol=1e-9)
