"""Tests for the exception hierarchy and top-level package surface."""

import pytest

import repro
from repro import exceptions


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("RuleFormatError", "InvalidRangeError", "TreeError",
                     "InvalidActionError", "BuildError", "ConfigError",
                     "CheckpointError"):
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError)

    def test_invalid_action_is_a_tree_error(self):
        assert issubclass(exceptions.InvalidActionError, exceptions.TreeError)

    def test_catching_base_class_catches_subclasses(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.ConfigError("bad config")


class TestPackageSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing top-level export {name}"

    def test_key_classes_importable_from_top_level(self):
        assert repro.Rule is not None
        assert repro.DecisionTree is not None
        assert repro.NeuroCutsTrainer is not None
