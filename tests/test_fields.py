"""Tests for repro.rules.fields: ranges, prefixes, and IP conversions."""

import pytest

from repro.exceptions import InvalidRangeError
from repro.rules.fields import (
    DIMENSIONS,
    FIELD_BITS,
    FIELD_RANGES,
    FULL_SPACE,
    Dimension,
    int_to_ip,
    ip_to_int,
    prefix_to_range,
    range_contains,
    range_intersection,
    range_overlap,
    range_to_prefix,
    validate_range,
)


class TestDimension:
    def test_five_dimensions_in_canonical_order(self):
        assert [d.name for d in DIMENSIONS] == [
            "SRC_IP", "DST_IP", "SRC_PORT", "DST_PORT", "PROTOCOL"
        ]

    def test_bit_widths(self):
        assert Dimension.SRC_IP.bits == 32
        assert Dimension.DST_PORT.bits == 16
        assert Dimension.PROTOCOL.bits == 8

    def test_size_is_two_to_the_bits(self):
        for dim in DIMENSIONS:
            assert dim.size == 2 ** FIELD_BITS[dim]

    def test_full_space_covers_every_dimension(self):
        assert len(FULL_SPACE) == len(DIMENSIONS)
        for dim, (lo, hi) in zip(DIMENSIONS, FULL_SPACE):
            assert (lo, hi) == FIELD_RANGES[dim]


class TestValidateRange:
    def test_accepts_valid_range(self):
        assert validate_range(Dimension.SRC_PORT, 10, 20) == (10, 20)

    def test_rejects_empty_range(self):
        with pytest.raises(InvalidRangeError):
            validate_range(Dimension.SRC_PORT, 20, 20)

    def test_rejects_inverted_range(self):
        with pytest.raises(InvalidRangeError):
            validate_range(Dimension.SRC_PORT, 30, 20)

    def test_rejects_out_of_bounds(self):
        with pytest.raises(InvalidRangeError):
            validate_range(Dimension.PROTOCOL, 0, 300)


class TestPrefixConversion:
    def test_full_prefix_is_single_value(self):
        assert prefix_to_range(5, 32, bits=32) == (5, 6)

    def test_zero_prefix_is_full_range(self):
        assert prefix_to_range(12345, 0, bits=32) == (0, 1 << 32)

    def test_prefix_masks_low_bits(self):
        value = ip_to_int("192.168.37.200")
        lo, hi = prefix_to_range(value, 16, bits=32)
        assert lo == ip_to_int("192.168.0.0")
        assert hi == ip_to_int("192.169.0.0")

    def test_roundtrip_range_to_prefix(self):
        lo, hi = prefix_to_range(ip_to_int("10.1.0.0"), 16)
        value, plen = range_to_prefix(lo, hi)
        assert (value, plen) == (ip_to_int("10.1.0.0"), 16)

    def test_range_to_prefix_rejects_non_power_of_two(self):
        with pytest.raises(InvalidRangeError):
            range_to_prefix(0, 3)

    def test_range_to_prefix_rejects_unaligned(self):
        with pytest.raises(InvalidRangeError):
            range_to_prefix(2, 6)

    def test_prefix_length_out_of_bounds(self):
        with pytest.raises(InvalidRangeError):
            prefix_to_range(0, 40, bits=32)


class TestIpConversion:
    def test_ip_roundtrip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.77"):
            assert int_to_ip(ip_to_int(text)) == text

    def test_rejects_malformed_ip(self):
        with pytest.raises(InvalidRangeError):
            ip_to_int("10.0.0")
        with pytest.raises(InvalidRangeError):
            ip_to_int("256.0.0.1")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(InvalidRangeError):
            int_to_ip(1 << 33)


class TestRangeOps:
    def test_overlap(self):
        assert range_overlap((0, 10), (5, 15))
        assert not range_overlap((0, 10), (10, 15))

    def test_contains(self):
        assert range_contains((0, 100), (10, 20))
        assert not range_contains((10, 20), (0, 100))
        assert range_contains((10, 20), (10, 20))

    def test_intersection(self):
        assert range_intersection((0, 10), (5, 15)) == (5, 10)
        assert range_intersection((0, 10), (10, 20)) is None
