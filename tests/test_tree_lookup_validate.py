"""Tests for multi-tree classifiers, validation helpers and serialization."""

import pytest

from repro.rules import Dimension, Rule, RuleSet
from repro.tree import (
    CutAction,
    DecisionTree,
    PartitionAction,
    TreeClassifier,
    assert_tree_invariants,
    build_with_policy,
    corner_packets,
    load_tree,
    save_tree,
    tree_from_dict,
    tree_to_dict,
    validate_classifier,
    validate_tree,
)


@pytest.fixture
def two_tree_classifier(small_fw_ruleset):
    """A classifier whose rules are split across two trees by coverage."""
    large = [r for r in small_fw_ruleset
             if r.coverage_fraction(Dimension.SRC_IP) > 0.5]
    small = [r for r in small_fw_ruleset
             if r.coverage_fraction(Dimension.SRC_IP) <= 0.5]
    from repro.exceptions import InvalidActionError

    trees = []
    for subset in (small, large):
        if not subset:
            continue
        # max_depth keeps the fixed DstIP-cutting policy from exploding on
        # rules that wildcard DstIP; truncated trees remain exact.
        tree = DecisionTree(small_fw_ruleset, leaf_threshold=8, rules=subset,
                            max_depth=3)
        while not tree.is_complete():
            node = tree.current_node()
            try:
                tree.apply_action(CutAction(Dimension.DST_IP, 8))
            except InvalidActionError:
                node.forced_leaf = True
        trees.append(tree)
    return TreeClassifier(small_fw_ruleset, trees)


class TestTreeClassifier:
    def test_needs_at_least_one_tree(self, small_fw_ruleset):
        with pytest.raises(ValueError):
            TreeClassifier(small_fw_ruleset, [])

    def test_multi_tree_lookup_matches_linear(self, two_tree_classifier,
                                              small_fw_ruleset):
        checked, mismatches = two_tree_classifier.validate(
            small_fw_ruleset.sample_packets(150, seed=3)
        )
        assert checked == 150
        assert mismatches == 0

    def test_stats_aggregate_across_trees(self, two_tree_classifier):
        stats = two_tree_classifier.stats()
        per_tree = two_tree_classifier.per_tree_stats()
        assert stats.num_trees == len(two_tree_classifier.trees)
        assert stats.classification_time == sum(
            s.classification_time for s in per_tree
        )
        assert stats.memory_bytes == sum(s.memory_bytes for s in per_tree)
        assert stats.depth == max(s.depth for s in per_tree)

    def test_classify_batch(self, two_tree_classifier, small_fw_ruleset):
        packets = small_fw_ruleset.sample_packets(10, seed=4)
        results = two_tree_classifier.classify_batch(packets)
        assert len(results) == 10


class TestValidation:
    def test_corner_packets_cover_rule_bounds(self, tiny_ruleset):
        packets = corner_packets(tiny_ruleset)
        assert len(packets) == 2 * len(tiny_ruleset)

    def test_validate_tree_reports_correct(self, small_acl_ruleset):
        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 8),
            leaf_threshold=8,
        )
        report = validate_tree(tree, num_random_packets=100)
        assert report.is_correct
        assert report.num_packets > 0
        assert report.mismatching_packets == []

    def test_validate_catches_broken_tree(self, small_acl_ruleset):
        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 8),
            leaf_threshold=8,
        )
        # Break the tree on purpose: empty out one leaf that holds rules.
        victim = max(tree.leaves(), key=lambda leaf: leaf.num_rules)
        victim.rules.clear()
        report = validate_tree(tree, num_random_packets=300)
        assert not report.is_correct

    def test_invariants_hold_for_policy_built_tree(self, small_fw_ruleset):
        def policy(node):
            if node.depth == 0:
                return PartitionAction(Dimension.SRC_IP, 0.5)
            return CutAction(Dimension.DST_IP, 4)

        tree = build_with_policy(small_fw_ruleset, policy, leaf_threshold=8,
                                 max_depth=3, max_actions=300)
        assert_tree_invariants(tree)


class TestSerialization:
    def test_dict_roundtrip_preserves_structure(self, small_acl_ruleset):
        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 8),
            leaf_threshold=8,
        )
        data = tree_to_dict(tree)
        restored = tree_from_dict(data, small_acl_ruleset)
        assert restored.num_nodes() == tree.num_nodes()
        assert restored.depth() == tree.depth()
        # Restored tree classifies identically.
        for packet in small_acl_ruleset.sample_packets(50, seed=5):
            a = tree.classify(packet)
            b = restored.classify(packet)
            assert (a.priority if a else None) == (b.priority if b else None)

    def test_file_roundtrip(self, tmp_path, small_acl_ruleset):
        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.DST_IP, 4),
            leaf_threshold=8,
        )
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        restored = load_tree(path, small_acl_ruleset)
        assert restored.num_leaves() == tree.num_leaves()

    def test_unknown_rule_priorities_rejected(self, small_acl_ruleset,
                                              small_fw_ruleset):
        from repro.exceptions import TreeError

        tree = build_with_policy(
            small_acl_ruleset,
            lambda node: CutAction(Dimension.SRC_IP, 4),
            leaf_threshold=8,
        )
        data = tree_to_dict(tree)
        # Deserialising against the wrong classifier must fail loudly if the
        # priorities do not line up.
        data["root"]["rule_priorities"] = [10 ** 6]
        with pytest.raises(TreeError):
            tree_from_dict(data, small_fw_ruleset)
