"""Tests for ClassBench filter-file parsing and emission."""

import pytest

from repro.exceptions import RuleFormatError
from repro.rules import Dimension, FIELD_RANGES
from repro.rules import io as rules_io

SAMPLE_FILE = """\
@10.0.0.0/8\t192.168.0.0/16\t0 : 65535\t80 : 80\t0x06/0xFF
@0.0.0.0/0\t0.0.0.0/0\t1024 : 65535\t53 : 53\t0x11/0xFF
@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00
"""


class TestParsing:
    def test_parse_rule_line_fields(self):
        rule = rules_io.parse_rule_line(
            "@10.0.0.0/8\t192.168.0.0/16\t0 : 65535\t80 : 80\t0x06/0xFF"
        )
        assert rule.range_for(Dimension.SRC_IP) == (10 << 24, 11 << 24)
        assert rule.range_for(Dimension.DST_PORT) == (80, 81)
        assert rule.range_for(Dimension.PROTOCOL) == (6, 7)

    def test_zero_protocol_mask_is_wildcard(self):
        rule = rules_io.parse_rule_line(
            "@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00"
        )
        assert rule.range_for(Dimension.PROTOCOL) == FIELD_RANGES[Dimension.PROTOCOL]

    def test_loads_orders_by_line(self):
        ruleset = rules_io.loads(SAMPLE_FILE, name="sample")
        assert len(ruleset) == 3
        # First line is highest priority.
        assert ruleset[0].range_for(Dimension.DST_PORT) == (80, 81)

    def test_loads_skips_comments_and_blank_lines(self):
        text = "# comment\n\n" + SAMPLE_FILE
        assert len(rules_io.loads(text)) == 3

    def test_empty_file_rejected(self):
        with pytest.raises(RuleFormatError):
            rules_io.loads("# only a comment\n")

    def test_malformed_port_range_rejected(self):
        with pytest.raises(RuleFormatError):
            rules_io.parse_rule_line("@0.0.0.0/0\t0.0.0.0/0\tfoo\t0 : 10\t0x00/0x00")

    def test_inverted_port_range_rejected(self):
        with pytest.raises(RuleFormatError):
            rules_io.parse_rule_line(
                "@0.0.0.0/0\t0.0.0.0/0\t50 : 10\t0 : 10\t0x00/0x00"
            )


class TestRoundtrip:
    def test_dumps_then_loads_preserves_geometry(self, small_acl_ruleset):
        text = rules_io.dumps(small_acl_ruleset)
        loaded = rules_io.loads(text, name="roundtrip")
        assert len(loaded) == len(small_acl_ruleset)
        # Port/protocol/prefix geometry survives the round trip for rules
        # whose IP ranges are prefix-expressible (all generated rules are).
        for original, parsed in zip(small_acl_ruleset, loaded):
            assert parsed.range_for(Dimension.SRC_PORT) == \
                original.range_for(Dimension.SRC_PORT)
            assert parsed.range_for(Dimension.DST_PORT) == \
                original.range_for(Dimension.DST_PORT)

    def test_file_roundtrip(self, tmp_path, small_acl_ruleset):
        path = tmp_path / "rules.txt"
        rules_io.dump(small_acl_ruleset, path)
        loaded = rules_io.load(path)
        assert len(loaded) == len(small_acl_ruleset)
        assert loaded.name == "rules"

    def test_load_many(self, tmp_path, small_acl_ruleset, small_fw_ruleset):
        paths = []
        for i, ruleset in enumerate((small_acl_ruleset, small_fw_ruleset)):
            path = tmp_path / f"set{i}.txt"
            rules_io.dump(ruleset, path)
            paths.append(path)
        loaded = rules_io.load_many(paths)
        assert [len(r) for r in loaded] == [
            len(small_acl_ruleset), len(small_fw_ruleset)
        ]
