"""Tests for the serving-trace format: round trips and file robustness.

The format's two contracts are exercised here: (1) a recorded trace
survives the write/read cycle field-for-field, and the decisions a replay
makes equal the decisions the live run recorded; (2) malformed files —
wrong magic, unsupported version, truncation, empty traces, dangling tenant
references — fail with clean :mod:`repro.exceptions` errors instead of raw
NumPy or JSON tracebacks.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exceptions import ReproError, TraceError, TraceFormatError
from repro.traces import (
    EVENT_DTYPE,
    RECORD_DTYPE,
    RULE_DTYPE,
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
    ServingTrace,
    TraceReader,
    TraceWriter,
    read_trace,
    record_serving,
    replay_trace,
    write_trace,
)

_PREAMBLE = struct.Struct("<HI")


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """A small recorded scenario plus its on-disk file."""
    path = tmp_path_factory.mktemp("traces") / "small.trace"
    outcome = record_serving(path, num_tenants=2, families=("acl1",),
                             num_rules=30, num_packets=300, num_flows=48,
                             churn_events=2, seed=9)
    return outcome


def _raw_trace_bytes(header: dict, records, rules, events) -> bytes:
    """Encode a trace file byte-for-byte (the wire-format contract)."""
    payload = json.dumps(header, sort_keys=True).encode("utf-8")
    buffer = io.BytesIO()
    buffer.write(TRACE_MAGIC)
    buffer.write(_PREAMBLE.pack(TRACE_FORMAT_VERSION, len(payload)))
    buffer.write(payload)
    for array in (records, rules, events):
        np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


class TestRoundTrip:
    def test_reader_writer_round_trip_field_for_field(self, recorded,
                                                      tmp_path):
        trace = recorded.trace
        path = TraceWriter(tmp_path / "rt.trace").write(trace)
        loaded = TraceReader(path).read()
        assert loaded == trace
        # The dataclass __eq__ covers everything below; spell the fields
        # out anyway so a future equality shortcut cannot hollow the test.
        assert loaded.specs == trace.specs
        assert loaded.seed == trace.seed
        assert loaded.scenario == trace.scenario
        assert np.array_equal(loaded.records, trace.records)
        assert loaded.updates == trace.updates
        for tenant_id, ruleset in trace.rulesets.items():
            assert loaded.rulesets[tenant_id] == ruleset
            assert loaded.rulesets[tenant_id].name == ruleset.name

    def test_written_bytes_are_deterministic(self, recorded, tmp_path):
        a = write_trace(recorded.trace, tmp_path / "a.trace")
        b = write_trace(recorded.trace, tmp_path / "b.trace")
        assert a.read_bytes() == b.read_bytes()

    def test_workload_reconstruction_matches_source(self, recorded):
        workload = recorded.trace.to_workload()
        source = recorded.result.workload
        assert workload.specs == source.specs
        assert workload.updates == source.updates
        assert len(workload.requests) == len(source.requests)
        for rebuilt, original in zip(workload.requests, source.requests):
            assert rebuilt == original

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        num_tenants=st.integers(min_value=1, max_value=3),
        num_rules=st.integers(min_value=10, max_value=25),
        num_packets=st.integers(min_value=40, max_value=120),
        churn_events=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_generated_scenarios_record_then_replay_exactly(
            self, tmp_path_factory, num_tenants, num_rules, num_packets,
            churn_events, seed):
        """record -> write -> read -> replay reproduces the live decisions."""
        path = tmp_path_factory.mktemp("prop") / "scenario.trace"
        outcome = record_serving(
            path, num_tenants=num_tenants, families=("acl1", "ipc1"),
            num_rules=num_rules, num_packets=num_packets,
            num_flows=max(8, num_packets // 4), churn_events=churn_events,
            seed=seed,
        )
        loaded = read_trace(path)
        assert loaded == outcome.trace
        replay = replay_trace(loaded)
        assert replay.report.is_exact, \
            f"replayed decisions diverged: {replay.report.mismatches}"


class TestFileRobustness:
    def test_errors_are_repro_errors(self):
        assert issubclass(TraceFormatError, TraceError)
        assert issubclass(TraceError, ReproError)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="could not be read"):
            read_trace(tmp_path / "nope.trace")

    def test_wrong_magic(self, recorded, tmp_path):
        data = recorded.path.read_bytes()
        bad = tmp_path / "magic.trace"
        bad.write_bytes(b"NOTATRCE" + data[8:])
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_trace(bad)

    def test_wrong_version(self, recorded, tmp_path):
        data = bytearray(recorded.path.read_bytes())
        data[8:10] = struct.pack("<H", TRACE_FORMAT_VERSION + 7)
        bad = tmp_path / "version.trace"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError,
                           match=f"version {TRACE_FORMAT_VERSION + 7}"):
            read_trace(bad)

    @pytest.mark.parametrize("keep", [4, 13, 60, -40])
    def test_truncated_file(self, recorded, tmp_path, keep):
        data = recorded.path.read_bytes()
        bad = tmp_path / "short.trace"
        bad.write_bytes(data[:keep])
        with pytest.raises(TraceFormatError):
            read_trace(bad)

    def test_corrupt_header_json(self, recorded, tmp_path):
        data = bytearray(recorded.path.read_bytes())
        header_length = struct.unpack("<I", data[10:14])[0]
        data[14:14 + header_length] = b"{" * header_length
        bad = tmp_path / "header.trace"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError, match="corrupt header"):
            read_trace(bad)

    def test_empty_trace(self, recorded, tmp_path):
        trace = recorded.trace
        header = trace.header()
        header["counts"]["records"] = 0
        bad = tmp_path / "empty.trace"
        bad.write_bytes(_raw_trace_bytes(
            header,
            np.zeros(0, dtype=RECORD_DTYPE),
            trace.rules_sidecar(),
            trace.events_sidecar(),
        ))
        with pytest.raises(TraceFormatError, match="no packet records"):
            read_trace(bad)

    def test_record_referencing_unregistered_tenant(self, recorded, tmp_path):
        trace = recorded.trace
        records = trace.records.copy()
        records["tenant"][0] = len(trace.specs) + 5
        bad = tmp_path / "tenant.trace"
        bad.write_bytes(_raw_trace_bytes(
            trace.header(), records,
            trace.rules_sidecar(), trace.events_sidecar(),
        ))
        with pytest.raises(TraceFormatError, match="tenant index"):
            read_trace(bad)

    def test_churn_referencing_unregistered_tenant(self, recorded, tmp_path):
        trace = recorded.trace
        events = trace.events_sidecar().copy()
        events["tenant"][0] = len(trace.specs) + 3
        bad = tmp_path / "churn.trace"
        bad.write_bytes(_raw_trace_bytes(
            trace.header(), trace.records,
            trace.rules_sidecar(), events,
        ))
        with pytest.raises(TraceFormatError, match="tenant index"):
            read_trace(bad)

    def test_count_mismatch(self, recorded, tmp_path):
        trace = recorded.trace
        header = trace.header()
        header["counts"]["records"] = trace.num_records + 1
        bad = tmp_path / "counts.trace"
        bad.write_bytes(_raw_trace_bytes(
            header, trace.records,
            trace.rules_sidecar(), trace.events_sidecar(),
        ))
        with pytest.raises(TraceFormatError, match="truncated or corrupt"):
            read_trace(bad)

    def test_non_finite_churn_event_time(self, recorded, tmp_path):
        trace = recorded.trace
        events = trace.events_sidecar().copy()
        events["time"][0] = float("nan")
        bad = tmp_path / "nan-event.trace"
        bad.write_bytes(_raw_trace_bytes(
            trace.header(), trace.records,
            trace.rules_sidecar(), events,
        ))
        with pytest.raises(TraceFormatError, match="invalid time"):
            read_trace(bad)

    def test_unknown_rule_op_code(self, recorded, tmp_path):
        trace = recorded.trace
        rules = trace.rules_sidecar().copy()
        churn_rows = np.flatnonzero(rules["event"] >= 0)
        assert len(churn_rows), "fixture needs churn rows"
        rules["op"][churn_rows[0]] = 7
        bad = tmp_path / "op.trace"
        bad.write_bytes(_raw_trace_bytes(
            trace.header(), trace.records,
            rules, trace.events_sidecar(),
        ))
        with pytest.raises(TraceFormatError, match="unknown op code"):
            read_trace(bad)

    def test_overlong_rule_name_rejected_instead_of_truncated(self, recorded,
                                                              tmp_path):
        from dataclasses import replace

        from repro.rules import Rule
        from repro.rules.ruleset import RuleSet

        trace = recorded.trace
        tenant = trace.specs[0].tenant_id
        rules = list(trace.rulesets[tenant].rules)
        rules[0] = Rule(ranges=rules[0].ranges, priority=rules[0].priority,
                        name="x" * 80)
        doctored = replace(
            trace,
            rulesets={**trace.rulesets,
                      tenant: RuleSet(rules, name=trace.rulesets[tenant].name)},
        )
        with pytest.raises(TraceFormatError, match="80 characters"):
            write_trace(doctored, tmp_path / "longname.trace")

    def test_non_monotone_timestamps(self, recorded, tmp_path):
        trace = recorded.trace
        records = trace.records.copy()
        records["time"][1] = records["time"][0] - 1.0
        bad = tmp_path / "times.trace"
        bad.write_bytes(_raw_trace_bytes(
            trace.header(), records,
            trace.rules_sidecar(), trace.events_sidecar(),
        ))
        with pytest.raises(TraceFormatError, match="non-decreasing"):
            read_trace(bad)
