"""Tests for repro.rules.ruleset: ordering, classification, edits, sampling."""

import pytest

from repro.exceptions import RuleFormatError
from repro.rules import Dimension, Packet, Rule, RuleSet


class TestOrderingAndPriorities:
    def test_rules_sorted_by_priority(self, tiny_ruleset):
        priorities = [r.priority for r in tiny_ruleset]
        assert priorities == sorted(priorities, reverse=True)

    def test_duplicate_priorities_reassigned_from_order(self):
        first = Rule.from_fields(protocol=(6, 7), priority=0, name="tcp")
        second = Rule.wildcard(priority=0, name="default")
        ruleset = RuleSet([first, second])
        assert ruleset[0].ranges == first.ranges
        assert ruleset[0].priority > ruleset[1].priority

    def test_empty_ruleset_rejected(self):
        with pytest.raises(RuleFormatError):
            RuleSet([])


class TestClassification:
    def test_highest_priority_rule_wins(self, tiny_ruleset):
        # This packet matches both the src/dst rule and the default rule.
        packet = Packet.from_strings("10.0.0.0", "10.0.0.1", 0, 0, 6)
        match = tiny_ruleset.classify(packet)
        assert match is not None and match.name == "r0"

    def test_default_rule_catches_everything(self, tiny_ruleset):
        packet = Packet.from_strings("1.2.3.4", "5.6.7.8", 9999, 9999, 50)
        match = tiny_ruleset.classify(packet)
        assert match is not None and match.name == "default"

    def test_matching_rules_sorted(self, tiny_ruleset):
        packet = Packet.from_strings("10.0.0.0", "10.0.0.1", 100, 100, 6)
        matches = tiny_ruleset.matching_rules(packet)
        assert len(matches) >= 2
        assert matches[0].priority >= matches[-1].priority


class TestEditing:
    def test_with_rules_added(self, tiny_ruleset):
        new_rule = Rule.from_fields(dst_port=(443, 444))
        bigger = tiny_ruleset.with_rules_added([new_rule])
        assert len(bigger) == len(tiny_ruleset) + 1
        # Original is untouched.
        assert len(tiny_ruleset) == 4

    def test_with_rules_removed(self, tiny_ruleset):
        to_remove = tiny_ruleset[1]
        smaller = tiny_ruleset.with_rules_removed([to_remove])
        assert len(smaller) == len(tiny_ruleset) - 1
        assert to_remove not in smaller

    def test_cannot_remove_all_rules(self, tiny_ruleset):
        with pytest.raises(RuleFormatError):
            tiny_ruleset.with_rules_removed(list(tiny_ruleset))


class TestSamplingAndStats:
    def test_sampled_packets_respect_bias(self, small_acl_ruleset):
        packets = small_acl_ruleset.sample_packets(50, seed=1, rule_bias=1.0)
        assert len(packets) == 50
        # Every packet drawn from a rule's box matches at least that rule.
        assert all(small_acl_ruleset.classify(p) is not None for p in packets)

    def test_sampling_is_deterministic(self, small_acl_ruleset):
        a = small_acl_ruleset.sample_packets(20, seed=5)
        b = small_acl_ruleset.sample_packets(20, seed=5)
        assert a == b

    def test_stats_fields(self, small_acl_ruleset):
        stats = small_acl_ruleset.stats()
        assert stats.num_rules == len(small_acl_ruleset)
        for dim in Dimension:
            assert 0.0 <= stats.wildcard_fraction[dim] <= 1.0
            assert 0.0 < stats.mean_coverage[dim] <= 1.0
            assert stats.distinct_ranges[dim] >= 1

    def test_subset(self, small_acl_ruleset):
        subset = small_acl_ruleset.subset(10, seed=0)
        assert len(subset) == 10
        assert all(rule in small_acl_ruleset.rules for rule in subset)

    def test_with_default_rule_idempotent(self, small_acl_ruleset):
        assert small_acl_ruleset.has_default_rule()
        assert small_acl_ruleset.with_default_rule() is small_acl_ruleset

    def test_with_default_rule_added_when_missing(self):
        ruleset = RuleSet([Rule.from_fields(protocol=(6, 7))])
        assert not ruleset.has_default_rule()
        completed = ruleset.with_default_rule()
        assert completed.has_default_rule()
        assert len(completed) == 2
