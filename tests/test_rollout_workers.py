"""Tests for the actor/learner architecture: rollout workers, sharded
collection, backend determinism, and exact checkpoint resume."""

import numpy as np
import pytest

from repro.executors import SerialExecutor
from repro.nn.checkpoints import (
    flatten_parameters,
    load_checkpoint,
    load_training_checkpoint,
    parameter_spec,
    save_checkpoint,
    unflatten_parameters,
)
from repro.neurocuts import (
    NeuroCutsConfig,
    NeuroCutsTrainer,
    RolloutWorker,
    shard_budgets,
    shard_seeds,
)
from repro.neurocuts.workers import broadcast_weights
from repro.tree import validate_classifier


def _history_dicts(result):
    """Iteration stats without the timing field (never reproducible)."""
    return [
        {k: v for k, v in stats.as_dict().items() if k != "wall_time_s"}
        for stats in result.history
    ]


@pytest.fixture(scope="module")
def worker_config():
    return NeuroCutsConfig.fast_test_config(
        hidden_sizes=(16, 16),
        max_timesteps_total=900,
        timesteps_per_batch=300,
        max_timesteps_per_rollout=150,
        leaf_threshold=8,
        seed=3,
    )


class TestFlatWeights:
    def test_round_trip(self, trained_trainer):
        params = trained_trainer.model.parameters()
        flat = flatten_parameters(params)
        assert flat.ndim == 1
        assert flat.size == trained_trainer.model.num_parameters()
        restored = unflatten_parameters(flat, parameter_spec(params))
        assert set(restored) == set(params)
        for name in params:
            np.testing.assert_array_equal(restored[name], params[name])

    def test_size_mismatch_raises(self, trained_trainer):
        from repro.exceptions import CheckpointError

        params = trained_trainer.model.parameters()
        with pytest.raises(CheckpointError):
            unflatten_parameters(np.zeros(3), parameter_spec(params))


class TestShardMath:
    def test_budgets_cover_total(self):
        assert shard_budgets(300, 1) == [300]
        assert shard_budgets(300, 4) == [75, 75, 75, 75]
        assert sum(shard_budgets(301, 4)) == 301
        # Every worker gets at least one timestep even when outnumbered.
        assert shard_budgets(2, 4) == [1, 1, 1, 1]

    def test_budgets_validate(self):
        with pytest.raises(ValueError):
            shard_budgets(0, 2)
        with pytest.raises(ValueError):
            shard_budgets(10, 0)

    def test_seeds_deterministic_and_distinct(self):
        first = shard_seeds(3, 0, 4)
        assert first == shard_seeds(3, 0, 4)
        assert len(set(first)) == 4
        # Different iterations and roots give different streams.
        assert first != shard_seeds(3, 1, 4)
        assert first != shard_seeds(4, 0, 4)
        # Worker prefixes are stable: fewer workers = a prefix of more.
        assert shard_seeds(3, 0, 2) == first[:2]


class TestRolloutWorker:
    def test_collect_is_pure(self, small_acl_ruleset, worker_config):
        worker = RolloutWorker(small_acl_ruleset, worker_config)
        weights = broadcast_weights(worker.model)
        first = worker.collect(weights, seed=11, budget=120)
        second = worker.collect(weights, seed=11, budget=120)
        assert first.num_steps == second.num_steps
        assert len(first.summaries) == len(second.summaries)
        np.testing.assert_array_equal(first.batch.obs, second.batch.obs)
        np.testing.assert_array_equal(first.batch.actions, second.batch.actions)
        np.testing.assert_array_equal(first.batch.returns, second.batch.returns)

    def test_collect_fills_budget_with_whole_rollouts(self, small_acl_ruleset,
                                                      worker_config):
        worker = RolloutWorker(small_acl_ruleset, worker_config)
        weights = broadcast_weights(worker.model)
        shard = worker.collect(weights, seed=0, budget=100)
        assert shard.num_steps >= 100
        assert shard.num_steps == sum(s.num_steps for s in shard.summaries)
        assert len(shard.batch) == shard.num_steps

    def test_best_candidates_track_shard_minimum(self, small_acl_ruleset,
                                                 worker_config):
        worker = RolloutWorker(small_acl_ruleset, worker_config)
        weights = broadcast_weights(worker.model)
        shard = worker.collect(weights, seed=5, budget=200)
        best = min(s.objective for s in shard.summaries)
        assert shard.best_any is not None
        assert shard.best_any.objective == best
        if shard.best_complete is not None:
            assert shard.best_complete.objective >= best

    def test_different_seeds_different_rollouts(self, small_acl_ruleset,
                                                worker_config):
        worker = RolloutWorker(small_acl_ruleset, worker_config)
        weights = broadcast_weights(worker.model)
        a = worker.collect(weights, seed=1, budget=60)
        b = worker.collect(weights, seed=2, budget=60)
        assert a.num_steps != b.num_steps or \
            not np.array_equal(a.batch.actions, b.batch.actions)


class TestBackendDeterminism:
    def test_serial_matches_one_worker_process_pool(self, small_acl_ruleset,
                                                    worker_config):
        with NeuroCutsTrainer(small_acl_ruleset, worker_config) as serial:
            serial_result = serial.train()
        with NeuroCutsTrainer(small_acl_ruleset, worker_config,
                              rollout_backend="process") as pooled:
            pooled_result = pooled.train()
        assert _history_dicts(serial_result) == _history_dicts(pooled_result)
        assert serial_result.best_objective == pooled_result.best_objective
        assert serial_result.timesteps_total == pooled_result.timesteps_total

    def test_serial_reruns_are_identical(self, small_acl_ruleset, worker_config):
        with NeuroCutsTrainer(small_acl_ruleset, worker_config) as a:
            first = a.train()
        with NeuroCutsTrainer(small_acl_ruleset, worker_config) as b:
            second = b.train()
        assert _history_dicts(first) == _history_dicts(second)


class TestTrainerLifecycle:
    def test_single_leaf_ruleset_returns_optimal_tree(self, tiny_ruleset):
        # Every rule fits one terminal leaf: there are no decisions to
        # learn, but train() must return the (optimal) single-leaf tree
        # instead of crashing or spinning.
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16), leaf_threshold=len(tiny_ruleset), seed=0,
        )
        with NeuroCutsTrainer(tiny_ruleset, config) as trainer:
            result = trainer.train()
        assert result.best_tree.num_nodes() == 1
        assert result.timesteps_total == 0

    def test_close_releases_in_process_worker_state(self, small_acl_ruleset,
                                                    worker_config):
        from repro.neurocuts import workers

        trainer = NeuroCutsTrainer(small_acl_ruleset, worker_config)
        trainer.collect_batch()
        session = trainer._session
        assert session in workers._WORKERS  # serial backend: built in-process
        trainer.close()
        assert session not in workers._WORKERS


class TestShardedTraining:
    def test_multi_worker_training_produces_valid_classifier(
            self, small_acl_ruleset):
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16),
            max_timesteps_total=600,
            timesteps_per_batch=300,
            max_timesteps_per_rollout=150,
            leaf_threshold=8,
            seed=3,
            num_rollout_workers=2,
            rollout_backend="serial",  # 2 shards, no pool: fast and portable
        )
        with NeuroCutsTrainer(small_acl_ruleset, config) as trainer:
            result = trainer.train()
        assert trainer.num_rollout_workers == 2
        report = validate_classifier(result.best_classifier(),
                                     num_random_packets=100)
        assert report.is_correct
        # Each iteration gathered at least one rollout per shard.
        assert all(stats.num_rollouts >= 2 for stats in result.history)

    def test_external_executor_is_bootstrapped_and_left_running(
            self, small_acl_ruleset, worker_config):
        executor = SerialExecutor()
        trainer = NeuroCutsTrainer(small_acl_ruleset, worker_config,
                                   executor=executor)
        batch, summaries = trainer.collect_batch()
        assert len(batch) >= worker_config.timesteps_per_batch
        assert summaries
        trainer.close()  # must NOT shut down the external executor
        assert executor.map(len, [[1, 2]]) == [2]

    def test_interleaved_trainers_on_shared_external_executor(
            self, small_acl_ruleset, small_fw_ruleset, worker_config):
        # Bootstrapped worker state keeps only the most recent session per
        # process; interleaved trainers must transparently rebuild (collect
        # is pure, so results are unaffected) rather than error or leak.
        from repro.neurocuts import workers

        executor = SerialExecutor()
        a = NeuroCutsTrainer(small_acl_ruleset, worker_config,
                             executor=executor)
        b = NeuroCutsTrainer(small_fw_ruleset, worker_config,
                             executor=executor)
        a.collect_batch()
        b.collect_batch()  # evicts a's bootstrapped worker
        batch, summaries = a.collect_batch()  # rebuilds from its payload
        assert len(batch) >= worker_config.timesteps_per_batch
        assert summaries
        assert len(workers._BOOTSTRAPPED_SESSIONS) == 1  # only the latest kept
        sessions = {a._session, b._session}
        a.close()
        b.close()
        assert not workers._BOOTSTRAPPED_SESSIONS & sessions
        assert not set(workers._WORKERS) & sessions


class TestCheckpointResume:
    def test_model_only_checkpoint_back_compat(self, trained_trainer, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(trained_trainer.model, path)
        model = load_checkpoint(path)
        assert model.num_parameters() == trained_trainer.model.num_parameters()
        bundle = load_training_checkpoint(path)
        assert bundle.optimizer_state is None
        assert bundle.trainer_state is None

    def test_optimizer_state_round_trip(self, trained_trainer, tmp_path):
        path = tmp_path / "learner.npz"
        save_checkpoint(trained_trainer.model, path,
                        optimizer=trained_trainer.learner.optimizer)
        bundle = load_training_checkpoint(path)
        saved = trained_trainer.learner.optimizer.state_dict()
        assert bundle.optimizer_state["t"] == saved["t"]
        assert set(bundle.optimizer_state["m"]) == set(saved["m"])
        for name, array in saved["m"].items():
            np.testing.assert_array_equal(bundle.optimizer_state["m"][name],
                                          array)

    def test_resume_is_exact(self, small_acl_ruleset, tmp_path):
        def config():
            return NeuroCutsConfig.fast_test_config(
                hidden_sizes=(16, 16),
                max_timesteps_total=1200,
                timesteps_per_batch=300,
                max_timesteps_per_rollout=150,
                leaf_threshold=8,
                seed=3,
            )

        # Uninterrupted run: 4 iterations in one go.
        with NeuroCutsTrainer(small_acl_ruleset, config()) as full:
            full_result = full.train(max_iterations=4)

        # Interrupted run: 2 iterations, checkpoint, restore, 2 more.
        path = tmp_path / "resume.npz"
        with NeuroCutsTrainer(small_acl_ruleset, config()) as first_half:
            first_half.train(max_iterations=2)
            first_half.save(path)
        resumed = NeuroCutsTrainer.restore(path, small_acl_ruleset, config())
        with resumed:
            resumed_result = resumed.train(max_iterations=4)

        assert _history_dicts(resumed_result) == _history_dicts(full_result)
        assert resumed_result.best_objective == full_result.best_objective
        assert resumed_result.timesteps_total == full_result.timesteps_total
        # The resumed best tree still classifies correctly.
        report = validate_classifier(resumed_result.best_classifier(),
                                     num_random_packets=100)
        assert report.is_correct

    def test_restore_without_config_resumes_saved_config(
            self, small_acl_ruleset, tmp_path):
        config = NeuroCutsConfig.fast_test_config(
            hidden_sizes=(16, 16),
            max_timesteps_total=1200,
            timesteps_per_batch=300,
            max_timesteps_per_rollout=150,
            leaf_threshold=8,
            seed=3,
            time_space_coeff=0.5,
            reward_scaling="log",
            num_rollout_workers=2,
            rollout_backend="serial",
        )
        path = tmp_path / "cfg.npz"
        with NeuroCutsTrainer(small_acl_ruleset, config) as trainer:
            trainer.train(max_iterations=1)
            trainer.save(path)
        resumed = NeuroCutsTrainer.restore(path, small_acl_ruleset)
        with resumed:
            # The saved (non-default) config came back, not NeuroCutsConfig().
            assert resumed.config.seed == 3
            assert resumed.config.time_space_coeff == 0.5
            assert resumed.config.reward_scaling == "log"
            assert resumed.config.num_rollout_workers == 2
            assert tuple(resumed.config.hidden_sizes) == (16, 16)
            resumed.train(max_iterations=2)
        assert len(resumed.history) == 2

    def test_restore_rejects_model_only_checkpoint(self, trained_trainer,
                                                   small_acl_ruleset, tmp_path):
        from repro.exceptions import CheckpointError

        path = tmp_path / "model_only.npz"
        save_checkpoint(trained_trainer.model, path)
        with pytest.raises(CheckpointError):
            NeuroCutsTrainer.restore(path, small_acl_ruleset)
