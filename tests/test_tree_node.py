"""Tests for Node: applying cuts and partitions, pruning, EffiCuts categories."""

import pytest

from repro.exceptions import InvalidActionError
from repro.rules import Dimension, FIELD_RANGES, FULL_SPACE, Rule
from repro.tree import (
    CutAction,
    EffiCutsPartitionAction,
    MultiCutAction,
    Node,
    PartitionAction,
    SplitAction,
    efficuts_categories,
    remove_redundant_rules,
)


def make_node(rules, ranges=FULL_SPACE, depth=0):
    return Node(ranges=ranges, rules=list(rules), depth=depth)


@pytest.fixture
def mixed_rules():
    return [
        Rule.from_prefixes(src_ip="10.0.0.0/8", priority=4, name="narrow_src"),
        Rule.from_prefixes(dst_ip="192.168.0.0/16", priority=3, name="narrow_dst"),
        Rule.from_fields(dst_port=(80, 81), priority=2, name="http"),
        Rule.wildcard(priority=1, name="default"),
    ]


class TestCut:
    def test_cut_creates_children_that_tile_the_range(self, mixed_rules):
        node = make_node(mixed_rules)
        children = node.apply(CutAction(Dimension.SRC_IP, 4))
        assert len(children) == 4
        boundaries = [child.range_for(Dimension.SRC_IP) for child in children]
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == FIELD_RANGES[Dimension.SRC_IP][1]
        for left, right in zip(boundaries, boundaries[1:]):
            assert left[1] == right[0]

    def test_children_inherit_intersecting_rules(self, mixed_rules):
        node = make_node(mixed_rules)
        children = node.apply(CutAction(Dimension.SRC_IP, 4))
        # The wildcard and dst-based rules intersect every child.
        for child in children:
            names = {rule.name for rule in child.rules}
            assert "default" in names
        # The narrow source rule (10.0.0.0/8) only lands in the first child.
        first_names = {rule.name for rule in children[0].rules}
        assert "narrow_src" in first_names
        for child in children[1:]:
            assert "narrow_src" not in {rule.name for rule in child.rules}

    def test_child_depth_increments(self, mixed_rules):
        node = make_node(mixed_rules, depth=3)
        children = node.apply(CutAction(Dimension.DST_IP, 2))
        assert all(child.depth == 4 for child in children)

    def test_double_apply_rejected(self, mixed_rules):
        node = make_node(mixed_rules)
        node.apply(CutAction(Dimension.SRC_IP, 2))
        with pytest.raises(InvalidActionError):
            node.apply(CutAction(Dimension.SRC_IP, 2))

    def test_cut_narrower_than_requested(self):
        # A protocol range of width 2 cannot be cut into 8 pieces.
        rules = [Rule.from_fields(protocol=(6, 7)), Rule.from_fields(protocol=(7, 8))]
        box = list(FULL_SPACE)
        box[int(Dimension.PROTOCOL)] = (6, 8)
        node = make_node(rules, ranges=tuple(box))
        children = node.apply(CutAction(Dimension.PROTOCOL, 8))
        assert len(children) == 2

    def test_cut_on_width_one_range_rejected(self):
        box = list(FULL_SPACE)
        box[int(Dimension.PROTOCOL)] = (6, 7)
        node = make_node([Rule.wildcard()], ranges=tuple(box))
        with pytest.raises(InvalidActionError):
            node.apply(CutAction(Dimension.PROTOCOL, 2))

    def test_multicut_children_count(self, mixed_rules):
        node = make_node(mixed_rules)
        children = node.apply(
            MultiCutAction(cuts=((Dimension.SRC_IP, 2), (Dimension.DST_IP, 2)))
        )
        assert len(children) == 4

    def test_split_action(self, mixed_rules):
        node = make_node(mixed_rules)
        midpoint = 1 << 31
        children = node.apply(SplitAction(Dimension.SRC_IP, midpoint))
        assert len(children) == 2
        assert children[0].range_for(Dimension.SRC_IP) == (0, midpoint)
        assert children[1].range_for(Dimension.SRC_IP) == (midpoint, 1 << 32)

    def test_split_outside_range_rejected(self, mixed_rules):
        box = list(FULL_SPACE)
        box[int(Dimension.SRC_PORT)] = (100, 200)
        node = make_node(mixed_rules, ranges=tuple(box))
        with pytest.raises(InvalidActionError):
            node.apply(SplitAction(Dimension.SRC_PORT, 500))


class TestPartition:
    def test_simple_partition_splits_by_coverage(self, mixed_rules):
        node = make_node(mixed_rules)
        children = node.apply(PartitionAction(Dimension.SRC_IP, 0.5))
        assert len(children) == 2
        small, large = children
        assert {r.name for r in small.rules} == {"narrow_src"}
        assert {r.name for r in large.rules} == {"narrow_dst", "http", "default"}
        # Rule counts are preserved exactly (no replication).
        assert small.num_rules + large.num_rules == node.num_rules

    def test_partition_children_keep_parent_box(self, mixed_rules):
        node = make_node(mixed_rules)
        children = node.apply(PartitionAction(Dimension.SRC_IP, 0.5))
        for child in children:
            assert child.ranges == node.ranges

    def test_partition_state_updated(self, mixed_rules):
        node = make_node(mixed_rules)
        small, large = node.apply(PartitionAction(Dimension.SRC_IP, 0.64))
        dim = int(Dimension.SRC_IP)
        assert small.partition_state[dim][1] <= large.partition_state[dim][0]

    def test_useless_partition_rejected(self):
        rules = [Rule.wildcard(priority=1), Rule.wildcard(priority=0, name="d2")]
        node = make_node(rules)
        with pytest.raises(InvalidActionError):
            node.apply(PartitionAction(Dimension.SRC_IP, 0.5))

    def test_efficuts_partition_groups_by_shape(self, mixed_rules):
        node = make_node(mixed_rules)
        children = node.apply(EffiCutsPartitionAction(largeness_threshold=0.5))
        assert len(children) >= 2
        assert sum(child.num_rules for child in children) == len(mixed_rules)
        categories = {child.efficuts_category for child in children}
        assert len(categories) == len(children)


class TestHelpers:
    def test_efficuts_categories_bitmask(self):
        narrow_everywhere = Rule.from_fields(
            src_ip=(0, 256), dst_ip=(0, 256), src_port=(80, 81),
            dst_port=(80, 81), protocol=(6, 7),
        )
        ip_specific = Rule.from_prefixes(src_ip="10.0.0.0/8", dst_ip="10.0.0.0/8")
        buckets = efficuts_categories(
            [narrow_everywhere, ip_specific, Rule.wildcard()], 0.5
        )
        # Small in every dimension -> category 0.
        assert narrow_everywhere in buckets[0]
        # Small IPs but wildcard ports/protocol -> bits 2, 3 and 4 set.
        assert ip_specific in buckets[0b11100]
        # Large in every dimension -> all five bits set.
        assert Rule.wildcard() in buckets[0b11111]

    def test_remove_redundant_rules_drops_shadowed(self):
        high = Rule.from_fields(dst_port=(0, 1024), priority=5, name="high")
        shadowed = Rule.from_fields(dst_port=(80, 81), priority=1, name="low")
        kept = remove_redundant_rules([high, shadowed], FULL_SPACE)
        assert kept == [high]

    def test_remove_redundant_keeps_higher_priority_specific(self):
        specific = Rule.from_fields(dst_port=(80, 81), priority=5, name="high")
        broad = Rule.from_fields(dst_port=(0, 1024), priority=1, name="low")
        kept = remove_redundant_rules([specific, broad], FULL_SPACE)
        assert kept == [specific, broad]

    def test_node_contains_packet(self, mixed_rules):
        node = make_node(mixed_rules)
        assert node.contains_packet((0, 0, 0, 0, 0))
        box = list(FULL_SPACE)
        box[int(Dimension.PROTOCOL)] = (6, 7)
        node = make_node(mixed_rules, ranges=tuple(box))
        assert not node.contains_packet((0, 0, 0, 0, 17))

    def test_is_terminal_respects_threshold_and_forced(self, mixed_rules):
        node = make_node(mixed_rules)
        assert node.is_terminal(leaf_threshold=4)
        assert not node.is_terminal(leaf_threshold=2)
        node.forced_leaf = True
        assert node.is_terminal(leaf_threshold=2)
