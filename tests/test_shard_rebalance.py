"""Tests for load-aware shard rebalancing and live tenant migration.

Three layers, mirroring the subsystem's contracts:

1. **Policy properties** (hypothesis): a rebalance plan is a pure function
   of its telemetry snapshot, plans are conservative (only real tenants,
   only real shards, bounded move count), every move strictly decreases
   the descending-sorted shard-load vector (the no-oscillation /
   termination potential), and balanced placements yield empty plans.
2. **Migration mechanics**: registry export/import round-trips a slot
   through pickle (epoch history, retrain counters, warm flow cache), and
   the telemetry snapshot path stays consistent under concurrent adopts.
3. **Differential determinism**: the golden 4-tenant trace replays
   single-process, statically sharded, and with forced mid-trace
   migrations — identical decisions (bit-exact against the golden column)
   and identical deterministic counters, modulo the migration counters
   themselves.
"""

from __future__ import annotations

import pickle
import threading
from pathlib import Path
from typing import Dict, Mapping

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import HiCutsBuilder
from repro.classbench import generate_classifier
from repro.obs.metrics import MetricsRegistry
from repro.rules import Rule
from repro.serve import (
    EngineSlot,
    LoadAwareRebalancePolicy,
    MigrationPlan,
    NoRebalancePolicy,
    RetrainController,
    RetrainPolicy,
    ScheduledRebalancePolicy,
    ShardTelemetry,
    ShardTenant,
    TelemetrySnapshot,
    TenantLoad,
    TenantMigration,
    TenantRegistry,
    UnknownTenantError,
    make_rebalance_policy,
    serve_rebalancing,
)
from repro.traces import read_trace, replay_trace
from repro.workloads import FlowTraceConfig, build_workload, make_tenant_specs

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_REBALANCE = DATA_DIR / "acl1_rebalance.trace"


# --------------------------------------------------------------------------- #
# Snapshot helpers + strategies
# --------------------------------------------------------------------------- #


def make_snapshot(placements: Mapping[str, int], requests: Mapping[str, int],
                  num_shards: int, interval: int = 1,
                  time: float = 0.0) -> TelemetrySnapshot:
    """Build a snapshot directly from placement + per-tenant request maps."""
    by_shard: Dict[int, list] = {i: [] for i in range(num_shards)}
    for tenant_id in sorted(placements):
        by_shard[placements[tenant_id]].append(
            TenantLoad(tenant_id=tenant_id, requests=requests[tenant_id]))
    return TelemetrySnapshot(
        interval=interval, time=time,
        shards=tuple(
            ShardTelemetry(shard_index=i, tenants=tuple(by_shard[i]))
            for i in range(num_shards)
        ),
    )


def apply_plan(placements: Dict[str, int], plan: MigrationPlan
               ) -> Dict[str, int]:
    updated = dict(placements)
    for move in plan.migrations:
        assert updated[move.tenant_id] == move.source_shard
        updated[move.tenant_id] = move.target_shard
    return updated


def shard_loads(placements: Mapping[str, int], requests: Mapping[str, int],
                num_shards: int) -> Dict[int, int]:
    loads = {i: 0 for i in range(num_shards)}
    for tenant_id, shard in placements.items():
        loads[shard] += requests[tenant_id]
    return loads


@st.composite
def telemetry_cases(draw):
    """(placements, requests, num_shards): arbitrary small clusters."""
    num_shards = draw(st.integers(min_value=2, max_value=3))
    num_tenants = draw(st.integers(min_value=0, max_value=6))
    placements = {}
    requests = {}
    for i in range(num_tenants):
        tenant_id = f"t{i:02d}"
        placements[tenant_id] = draw(
            st.integers(min_value=0, max_value=num_shards - 1))
        requests[tenant_id] = draw(st.integers(min_value=0, max_value=500))
    return placements, requests, num_shards


POLICIES = [
    LoadAwareRebalancePolicy(),
    LoadAwareRebalancePolicy(imbalance_ratio=1.0, max_migrations_per_cycle=3),
    LoadAwareRebalancePolicy(imbalance_ratio=1.5),
]


class TestLoadAwarePolicyProperties:
    @settings(max_examples=200, deadline=None)
    @given(case=telemetry_cases())
    def test_plan_is_pure_function_of_snapshot(self, case):
        placements, requests, num_shards = case
        snapshot = make_snapshot(placements, requests, num_shards)
        for policy in POLICIES:
            first = policy.plan(snapshot)
            second = policy.plan(snapshot)
            assert first == second
            # A structurally equal snapshot gives the same plan too.
            again = policy.plan(
                make_snapshot(placements, requests, num_shards))
            assert first == again

    @settings(max_examples=200, deadline=None)
    @given(case=telemetry_cases())
    def test_plans_are_conservative(self, case):
        """Moves only name real tenants on their actual shard, target real
        shards, never no-op, and respect the per-cycle bound."""
        placements, requests, num_shards = case
        snapshot = make_snapshot(placements, requests, num_shards)
        for policy in POLICIES:
            plan = policy.plan(snapshot)
            assert plan.interval == snapshot.interval
            assert len(plan.migrations) <= policy.max_migrations_per_cycle
            seen = set()
            for move in plan.migrations:
                assert move.tenant_id in placements
                assert move.source_shard != move.target_shard
                assert 0 <= move.target_shard < num_shards
                assert move.tenant_id not in seen, \
                    "a tenant may move at most once per plan"
                seen.add(move.tenant_id)
            # The first (or only) move always starts from the live
            # placement; later moves chain within the plan.
            if plan.migrations:
                first = plan.migrations[0]
                assert placements[first.tenant_id] == first.source_shard

    @settings(max_examples=200, deadline=None)
    @given(case=telemetry_cases())
    def test_moves_strictly_decrease_the_load_potential(self, case):
        """Every nonempty plan strictly lowers the descending-sorted shard
        load vector (lexicographically) and never raises the max load —
        the potential argument behind termination and no-oscillation."""
        placements, requests, num_shards = case
        for policy in POLICIES:
            snapshot = make_snapshot(placements, requests, num_shards)
            plan = policy.plan(snapshot)
            if not plan:
                continue
            before = shard_loads(placements, requests, num_shards)
            after = shard_loads(apply_plan(placements, plan), requests,
                                num_shards)
            before_sorted = sorted(before.values(), reverse=True)
            after_sorted = sorted(after.values(), reverse=True)
            assert max(after.values()) <= max(before.values())
            assert after_sorted < before_sorted

    @settings(max_examples=150, deadline=None)
    @given(case=telemetry_cases())
    def test_no_oscillation_and_termination(self, case):
        """Iterating plan -> apply -> re-snapshot on unchanged per-tenant
        load reaches a fixed point (empty plan) and never reverses the
        previous plan's move."""
        placements, requests, num_shards = case
        for policy in POLICIES:
            current = dict(placements)
            previous_moves = ()
            # num_shards ** num_tenants is a crude placement-count bound;
            # the strictly-decreasing potential guarantees far fewer steps.
            for step in range(num_shards ** max(len(placements), 1) + 1):
                snapshot = make_snapshot(current, requests, num_shards,
                                         interval=step + 1)
                plan = policy.plan(snapshot)
                if not plan:
                    break
                for move in plan.migrations:
                    for prev in previous_moves:
                        assert not (
                            move.tenant_id == prev.tenant_id
                            and move.target_shard == prev.source_shard
                            and move.source_shard == prev.target_shard
                        ), f"step {step} bounced {move.tenant_id} back"
                current = apply_plan(current, plan)
                previous_moves = plan.migrations
            else:
                pytest.fail("policy never reached a fixed point")
            # And the fixed point really is fixed.
            snapshot = make_snapshot(current, requests, num_shards)
            assert not policy.plan(snapshot)

    @settings(max_examples=100, deadline=None)
    @given(
        num_shards=st.integers(min_value=2, max_value=4),
        per_shard=st.integers(min_value=0, max_value=300),
        interval=st.integers(min_value=1, max_value=5),
    )
    def test_balanced_placement_yields_empty_plan(self, num_shards,
                                                  per_shard, interval):
        placements = {f"t{i}": i for i in range(num_shards)}
        requests = {f"t{i}": per_shard for i in range(num_shards)}
        snapshot = make_snapshot(placements, requests, num_shards,
                                 interval=interval)
        for policy in POLICIES:
            assert not policy.plan(snapshot)

    def test_single_shard_is_never_rebalanced(self):
        snapshot = make_snapshot({"a": 0, "b": 0}, {"a": 100, "b": 1}, 1)
        assert not LoadAwareRebalancePolicy().plan(snapshot)

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadAwareRebalancePolicy(imbalance_ratio=0.9)
        with pytest.raises(ValueError):
            LoadAwareRebalancePolicy(max_migrations_per_cycle=0)

    def test_hot_tenant_moves_to_cold_shard(self):
        """The canonical flash-crowd shape: one tenant dwarfs the rest."""
        placements = {"crowd": 0, "small": 0, "other": 1}
        requests = {"crowd": 900, "small": 50, "other": 60}
        plan = LoadAwareRebalancePolicy().plan(
            make_snapshot(placements, requests, 2))
        # Moving the crowd itself would leave shard 1 at 960 > 950: not an
        # improvement.  The policy moves the largest tenant that helps.
        assert plan.migrations == (TenantMigration(
            tenant_id="small", source_shard=0, target_shard=1),)


class TestTelemetrySnapshotCapture:
    def test_requests_sum_across_registries_and_follow_placement(self):
        """A migrated tenant's pre-migration samples (left in the source
        registry) are attributed to its *current* shard."""
        source, target = MetricsRegistry(), MetricsRegistry()
        source.counter("serve.tenant_requests.a").inc(50)
        target.counter("serve.tenant_requests.a").inc(8)
        source.counter("serve.tenant_requests.b").inc(7)
        snapshot = TelemetrySnapshot.capture(
            interval=1, time=0.25,
            placements={"a": 1, "b": 0},
            registries=[source, target],
        )
        assert snapshot.interval == 1 and snapshot.time == 0.25
        loads = {t.tenant_id: t.requests
                 for shard in snapshot.shards for t in shard.tenants}
        assert loads == {"a": 58, "b": 7}
        assert snapshot.placement() == {"a": 1, "b": 0}
        assert snapshot.shard_loads() == {0: 7, 1: 58}

    def test_queue_wait_goodput_and_depth_flow_through(self):
        reg0, reg1 = MetricsRegistry(), MetricsRegistry()
        reg0.counter("serve.tenant_requests.a").inc(3)
        for value in (0.001, 0.002, 0.004):
            reg0.timing("serve.queue_wait_seconds").observe(value)
        snapshot = TelemetrySnapshot.capture(
            interval=2, time=1.0,
            placements={"a": 0},
            registries=[reg0, reg1],
            queue_depths={"a": 5},
            goodput={"a": 1234.5},
        )
        shard0 = snapshot.shards[0]
        assert shard0.queue_wait_p99 == pytest.approx(
            reg0.timing("serve.queue_wait_seconds").percentile(99.0))
        assert shard0.queue_wait_p99 > 0.0
        (tenant,) = shard0.tenants
        assert tenant.queue_depth == 5
        assert tenant.goodput_pps == pytest.approx(1234.5)
        # Shard 1 served nothing: empty, zero percentile.
        assert snapshot.shards[1].tenants == ()
        assert snapshot.shards[1].queue_wait_p99 == 0.0


class TestScheduledPolicy:
    def _snapshot(self, interval):
        return make_snapshot({"a": 0, "b": 1}, {"a": 10, "b": 20}, 2,
                             interval=interval)

    def test_fires_only_at_its_interval(self):
        policy = ScheduledRebalancePolicy(moves=((2, "a", 1),))
        assert not policy.plan(self._snapshot(1))
        plan = policy.plan(self._snapshot(2))
        assert plan.migrations == (TenantMigration(
            tenant_id="a", source_shard=0, target_shard=1),)
        assert not policy.plan(self._snapshot(3))

    def test_skips_satisfied_unknown_and_out_of_range_moves(self):
        policy = ScheduledRebalancePolicy(moves=(
            (1, "b", 1),    # already on shard 1
            (1, "ghost", 0),  # never registered
            (1, "a", 9),    # no such shard
        ))
        assert not policy.plan(self._snapshot(1))

    def test_is_pure(self):
        policy = ScheduledRebalancePolicy(moves=((1, "a", 1),))
        assert policy.plan(self._snapshot(1)) == policy.plan(self._snapshot(1))


class TestPolicyRegistry:
    def test_make_by_name(self):
        assert isinstance(make_rebalance_policy("none"), NoRebalancePolicy)
        assert isinstance(make_rebalance_policy("load"),
                          LoadAwareRebalancePolicy)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown rebalance policy"):
            make_rebalance_policy("zigzag")


# --------------------------------------------------------------------------- #
# Migration mechanics
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def migration_ruleset():
    return generate_classifier("acl1", 40, seed=5)


def _fresh_rules(ruleset, count, tag="mig"):
    base = max(r.priority for r in ruleset) + 1
    return [
        Rule.from_prefixes(src_ip=f"203.0.{i}.0/24", priority=base + i,
                           name=f"{tag}{i}")
        for i in range(count)
    ]


class TestSlotMigration:
    def test_export_import_round_trips_through_pickle(self,
                                                      migration_ruleset):
        source = TenantRegistry(background_swaps=False)
        slot = source.register("t0", migration_ruleset)
        # Build some epoch history + pending retrain evidence to ship.
        for rule in _fresh_rules(migration_ruleset, 2):
            source.apply_update("t0", adds=[rule])
        epoch = slot.epoch
        updates = slot.updates_since_adoption
        ruleset = slot.ruleset

        state = source.export_slot("t0")
        assert "t0" not in source
        assert source.metrics.counter("serve.migrations_out").value == 1
        # The shippability contract: state crosses a process boundary.
        state = pickle.loads(pickle.dumps(state))

        target = TenantRegistry(background_swaps=False)
        imported = target.import_slot(state)
        assert target.metrics.counter("serve.migrations_in").value == 1
        assert imported.epoch == epoch
        assert imported.updates_since_adoption == updates
        assert imported.ruleset == ruleset
        # Epoch history survives: every recorded epoch still resolves.
        for past in range(epoch + 1):
            assert imported.ruleset_at(past) is not None
        # And the engine still answers exactly for the live ruleset.
        for packet in ruleset.sample_packets(150, seed=9):
            expected = ruleset.classify(packet)
            actual = imported.engine().classify(packet)
            assert (actual.priority if actual else None) == \
                (expected.priority if expected else None)

    def test_export_unknown_tenant_raises(self):
        registry = TenantRegistry(background_swaps=False)
        with pytest.raises(UnknownTenantError):
            registry.export_slot("nope")

    def test_import_duplicate_tenant_raises(self, migration_ruleset):
        source = TenantRegistry(background_swaps=False)
        source.register("t0", migration_ruleset)
        state = source.export_slot("t0")
        target = TenantRegistry(background_swaps=False)
        target.register("t0", migration_ruleset)
        with pytest.raises(ValueError, match="already registered"):
            target.import_slot(state)


class TestTelemetrySnapshotRace:
    def test_snapshot_retries_when_adoption_lands_mid_read(
            self, migration_ruleset, monkeypatch):
        """A swap landing between the epoch read and the counter reads must
        not produce a torn entry; the snapshot retries and reports the
        post-adopt state."""
        registry = TenantRegistry(background_swaps=False)
        slot = registry.register("t0", migration_ruleset)
        replacement = HiCutsBuilder(binth=8).build(slot.ruleset)
        original = EngineSlot.cache_stats
        fired = {"done": False}

        def racing_cache_stats(self):
            if not fired["done"]:
                fired["done"] = True
                self.adopt_classifier(replacement)
            return original(self)

        monkeypatch.setattr(EngineSlot, "cache_stats", racing_cache_stats)
        entry = registry.telemetry()["t0"]
        assert fired["done"]
        assert entry["epoch"] == slot.epoch == 1
        assert entry["rules"] == len(replacement.ruleset)
        assert entry["retrain"]["accumulated_updates"] == 0

    def test_concurrent_adoptions_never_tear_the_snapshot(
            self, migration_ruleset):
        """Thread hammer: the (epoch, rules) pair read by telemetry() must
        always correspond to one adoption generation, never a mix."""
        from repro.rules import RuleSet

        small = migration_ruleset
        big = RuleSet(list(small.rules)
                      + _fresh_rules(small, 3, tag="hammer"),
                      name="hammer")
        registry = TenantRegistry(background_swaps=False)
        slot = registry.register("t0", small)
        classifiers = [HiCutsBuilder(binth=8).build(small),
                       HiCutsBuilder(binth=8).build(big)]
        # Adoption i produces epoch i+1 serving classifiers[i % 2].
        expected = {0: len(small)}
        stop = threading.Event()

        def adopter():
            for i in range(60):
                expected[i + 1] = len(classifiers[i % 2].ruleset)
                slot.adopt_classifier(classifiers[i % 2])
            stop.set()

        torn = []
        thread = threading.Thread(target=adopter)
        thread.start()
        while not stop.is_set():
            entry = registry.telemetry()["t0"]
            want = expected.get(entry["epoch"])
            if want is not None and entry["rules"] != want:
                torn.append((entry["epoch"], entry["rules"], want))
        thread.join()
        assert torn == [], f"torn telemetry reads: {torn[:5]}"


# --------------------------------------------------------------------------- #
# Differential determinism on the golden trace
# --------------------------------------------------------------------------- #


MIGRATION_KEYS = {"migrations", "rebalance_plans", "rebalance_deferred"}


def _stable_counters(report):
    counters = dict(report.deterministic_counters())
    migration = {key: counters.pop(key) for key in MIGRATION_KEYS}
    return counters, migration


@pytest.fixture(scope="module")
def rebalance_trace():
    return read_trace(GOLDEN_REBALANCE)


class TestThreeWayDifferential:
    """The same golden trace, served three ways, must agree bit-for-bit."""

    @pytest.fixture(scope="class")
    def outcomes(self, rebalance_trace):
        tenants = sorted(rebalance_trace.rulesets)
        # Round-robin start: tenants[0]/tenants[2] on shard 0, the rest on
        # shard 1.  Force two migrations at the first two evaluations.
        forced = ScheduledRebalancePolicy(moves=(
            (1, tenants[0], 1),
            (2, tenants[1], 0),
        ))
        single = replay_trace(rebalance_trace)
        static = replay_trace(rebalance_trace, serving_workers=2,
                              serving_backend="serial")
        rebalanced = replay_trace(rebalance_trace, serving_workers=2,
                                  serving_backend="serial",
                                  rebalance_policy=forced,
                                  rebalance_interval=0.01)
        return single, static, rebalanced

    def test_all_three_replays_match_the_golden_column(self, outcomes):
        for label, outcome in zip(("single", "static", "rebalanced"),
                                  outcomes):
            assert outcome.report.is_exact, \
                f"{label}: {outcome.report.mismatches[:3]}"
            assert outcome.report.num_dropped == 0
            assert outcome.report.num_duplicates == 0

    def test_migrations_actually_happened(self, outcomes):
        _, static, rebalanced = outcomes
        assert static.result.report.migrations == 0
        assert rebalanced.result.report.migrations >= 1
        assert rebalanced.result.report.rebalance_plans >= 2

    def test_deterministic_counters_identical_across_placements(self,
                                                                outcomes):
        single, static, rebalanced = outcomes
        single_counters, single_migration = \
            _stable_counters(single.result.report)
        static_counters, _ = _stable_counters(static.result.report)
        rebalanced_counters, _ = _stable_counters(rebalanced.result.report)
        assert single_migration == {"migrations": 0, "rebalance_plans": 0,
                                    "rebalance_deferred": 0}
        assert static_counters == single_counters
        assert rebalanced_counters == single_counters

    def test_rebalanced_replay_is_deterministic_across_runs(
            self, rebalance_trace, outcomes):
        _, _, rebalanced = outcomes
        tenants = sorted(rebalance_trace.rulesets)
        again = replay_trace(
            rebalance_trace, serving_workers=2, serving_backend="serial",
            rebalance_policy=ScheduledRebalancePolicy(moves=(
                (1, tenants[0], 1),
                (2, tenants[1], 0),
            )),
            rebalance_interval=0.01)
        assert again.report.is_exact
        # Full equality including the migration counters this time.
        assert again.result.report.deterministic_counters() == \
            rebalanced.result.report.deterministic_counters()


class TestLoadPolicyEndToEnd:
    def test_load_policy_replay_stays_exact(self, rebalance_trace):
        """The load-aware policy on the golden trace: whatever it decides,
        decisions must stay golden and nothing may drop."""
        outcome = replay_trace(
            rebalance_trace, serving_workers=2, serving_backend="serial",
            rebalance_policy=LoadAwareRebalancePolicy(),
            rebalance_interval=0.01)
        assert outcome.report.is_exact, outcome.report.mismatches[:3]
        assert outcome.report.num_dropped == 0
        counters, _ = _stable_counters(outcome.result.report)
        single_counters, _ = \
            _stable_counters(replay_trace(rebalance_trace).result.report)
        assert counters == single_counters


# --------------------------------------------------------------------------- #
# Retrain/migration interference: deferred, never dropped
# --------------------------------------------------------------------------- #


def _sticky_controller(holds):
    """A controller whose ``retrain_in_flight`` stays True for the first
    ``holds[tenant]`` polls — a deterministic stand-in for a training job
    that outlasts several batch boundaries."""
    state = dict(holds)

    class StickyRetrainController(RetrainController):
        def retrain_in_flight(self, tenant_id):
            remaining = state.get(tenant_id, 0)
            if remaining > 0:
                state[tenant_id] = remaining - 1
                return True
            return super().retrain_in_flight(tenant_id)

    return StickyRetrainController, state


class TestDeferredMigration:
    """A rebalance plan targeting a mid-retrain slot is pending-until-
    settled: retried at later events (or the end-of-trace quiesce point),
    counted in ``rebalance_deferred``, and never lost."""

    THRESHOLD = 10_000  # no organic retrains: the sticky stub is in charge

    def _run(self, monkeypatch, mover_holds=0):
        """Serve a 2-tenant trace on 2 shards with one scheduled move of
        the first tenant (shard 0 -> 1); ``mover_holds`` settle attempts
        are blocked by the scripted in-flight retrain."""
        import repro.serve.sharded as sharded_module

        specs = make_tenant_specs(2, families=("acl1",), num_rules=40,
                                  seed=9)
        mover = specs[0].tenant_id  # round-robin start: shard 0
        sticky, state = _sticky_controller({mover: mover_holds})
        monkeypatch.setattr(sharded_module, "RetrainController", sticky)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=1200, num_flows=100, seed=9))
        tenants = [ShardTenant(s.tenant_id, s.algorithm, s.binth)
                   for s in specs]
        outcomes, merged, _ = serve_rebalancing(
            tenants, workload.rulesets, workload.requests, workload.updates,
            num_workers=2, background_swaps=False,
            retrain_threshold=self.THRESHOLD,
            retrain_policy=RetrainPolicy(timesteps=300, max_iterations=1,
                                         backend="serial"),
            policy=ScheduledRebalancePolicy(moves=((1, mover, 1),)),
            interval=0.002,  # the trace spans ~0.024s of trace clock
        )
        return outcomes, merged, mover, state

    def test_baseline_without_interference_migrates_immediately(
            self, monkeypatch):
        outcomes, merged, mover, _ = self._run(monkeypatch)
        assert merged.migrations == 1
        assert merged.rebalance_deferred == 0
        shard1 = next(o for o in outcomes if o.shard_index == 1)
        assert mover in shard1.tenant_ids

    def test_mid_retrain_move_defers_once_then_executes(self, monkeypatch):
        outcomes, merged, mover, state = self._run(monkeypatch,
                                                   mover_holds=3)
        # All three blocked settle attempts were consumed...
        assert state[mover] == 0
        # ...but the episode is counted once, and the plan was never lost:
        # the move executed at a later event of the same trace.
        assert merged.rebalance_deferred == 1
        assert merged.migrations == 1
        shard1 = next(o for o in outcomes if o.shard_index == 1)
        assert mover in shard1.tenant_ids

    def test_retrain_outlasting_trace_settles_at_quiesce_point(
            self, monkeypatch):
        """No plan is ever lost: a retrain still 'running' when the trace
        ends defers the move all the way to the end-of-trace settlement,
        which executes it after finish() quiesced the shard."""
        outcomes, merged, mover, _ = self._run(monkeypatch,
                                               mover_holds=10 ** 9)
        assert merged.rebalance_deferred == 1
        assert merged.migrations == 1
        shard1 = next(o for o in outcomes if o.shard_index == 1)
        assert mover in shard1.tenant_ids

    def test_deferral_changes_no_serving_decisions(self, monkeypatch):
        """Differential: deferred vs immediate execution of the same plan
        must serve identical deterministic counters (modulo the migration
        counters themselves)."""
        _, immediate, _, _ = self._run(monkeypatch)
        _, deferred, _, _ = self._run(monkeypatch, mover_holds=3)
        immediate_counters, immediate_migration = \
            _stable_counters(immediate)
        deferred_counters, deferred_migration = _stable_counters(deferred)
        assert deferred_counters == immediate_counters
        assert immediate_migration["rebalance_deferred"] == 0
        assert deferred_migration["rebalance_deferred"] == 1
        assert deferred_migration["migrations"] == \
            immediate_migration["migrations"] == 1


class TestDeferredMigrationGoldenTrace:
    def test_golden_replay_stays_exact_through_deferred_migration(
            self, rebalance_trace, monkeypatch):
        """The golden-trace differential through a deferred migration:
        decisions stay bit-exact and stable counters match the
        single-process replay even when the forced move is held back by
        an in-flight retrain for several batch boundaries."""
        import repro.serve.sharded as sharded_module

        tenants = sorted(rebalance_trace.rulesets)
        sticky, _ = _sticky_controller({tenants[0]: 4})
        monkeypatch.setattr(sharded_module, "RetrainController", sticky)
        outcome = replay_trace(
            rebalance_trace, serving_workers=2, serving_backend="serial",
            retrain_threshold=10_000,
            retrain_policy=RetrainPolicy(timesteps=300, max_iterations=1,
                                         backend="serial"),
            rebalance_policy=ScheduledRebalancePolicy(moves=(
                (1, tenants[0], 1),
            )),
            rebalance_interval=0.01)
        assert outcome.report.is_exact, outcome.report.mismatches[:3]
        assert outcome.report.num_dropped == 0
        counters, migration = _stable_counters(outcome.result.report)
        assert migration["rebalance_deferred"] == 1
        assert migration["migrations"] == 1
        single_counters, _ = \
            _stable_counters(replay_trace(rebalance_trace).result.report)
        assert counters == single_counters
