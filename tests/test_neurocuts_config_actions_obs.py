"""Tests for NeuroCuts configuration, action space, and observation encoding."""

import numpy as np
import pytest

from repro.exceptions import ConfigError
from repro.rules import DIMENSIONS, Dimension, FULL_SPACE, Rule
from repro.tree import (
    CUT_SIZES,
    CutAction,
    EffiCutsPartitionAction,
    Node,
    PartitionAction,
)
from repro.neurocuts import (
    NeuroCutsActionSpace,
    NeuroCutsConfig,
    ObservationEncoder,
    SIMPLE_PARTITION_THRESHOLDS,
    binary_encode,
    one_hot,
)
from repro.harness.experiments import TABLE1_PAPER_DEFAULTS


class TestConfig:
    def test_defaults_match_paper_table1(self):
        config = NeuroCutsConfig()
        for name, paper_value in TABLE1_PAPER_DEFAULTS.items():
            value = getattr(config, name)
            if isinstance(value, (tuple, list)):
                value = tuple(value)
            assert value == paper_value, f"{name} deviates from Table 1"

    def test_invalid_coefficient_rejected(self):
        with pytest.raises(ConfigError):
            NeuroCutsConfig(time_space_coeff=1.5)

    def test_invalid_partition_mode_rejected(self):
        with pytest.raises(ConfigError):
            NeuroCutsConfig(partition_mode="sometimes")

    def test_invalid_reward_scaling_rejected(self):
        with pytest.raises(ConfigError):
            NeuroCutsConfig(reward_scaling="sqrt")

    def test_fast_test_config_valid_and_small(self):
        config = NeuroCutsConfig.fast_test_config()
        assert config.max_timesteps_total < 100_000
        assert tuple(config.hidden_sizes) == (64, 64)

    def test_ppo_config_inherits_values(self):
        config = NeuroCutsConfig(learning_rate=1e-4, clip_param=0.2)
        ppo = config.ppo_config()
        assert ppo.learning_rate == 1e-4
        assert ppo.clip_param == 0.2


def make_node(rules, depth=0):
    return Node(ranges=FULL_SPACE, rules=list(rules), depth=depth)


@pytest.fixture
def mixed_node():
    return make_node([
        Rule.from_prefixes(src_ip="10.0.0.0/8", priority=3),
        Rule.from_fields(dst_port=(80, 81), priority=2),
        Rule.wildcard(priority=1),
    ])


class TestActionSpace:
    def test_cut_only_mode_sizes(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="none"))
        assert space.spec.sizes == (5, len(CUT_SIZES))

    def test_simple_mode_adds_threshold_actions(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="simple"))
        assert space.spec.num_partition_actions == len(SIMPLE_PARTITION_THRESHOLDS)

    def test_efficuts_mode_adds_one_action(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="efficuts"))
        assert space.spec.num_partition_actions == 1

    def test_decode_cut_actions(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="none"))
        for dim_idx, dim in enumerate(DIMENSIONS):
            for cut_idx, cuts in enumerate(CUT_SIZES):
                action = space.decode((dim_idx, cut_idx))
                assert isinstance(action, CutAction)
                assert action.dimension == dim and action.num_cuts == cuts

    def test_decode_partition_actions(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="simple"))
        action = space.decode((2, len(CUT_SIZES) + 3))
        assert isinstance(action, PartitionAction)
        assert action.dimension == DIMENSIONS[2]
        assert action.threshold == SIMPLE_PARTITION_THRESHOLDS[3]

    def test_decode_efficuts_action(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="efficuts"))
        action = space.decode((0, len(CUT_SIZES)))
        assert isinstance(action, EffiCutsPartitionAction)

    def test_decode_out_of_range_rejected(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="none"))
        with pytest.raises(ConfigError):
            space.decode((0, 99))

    def test_masks_allow_cuts_everywhere(self, mixed_node):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="none"))
        dim_mask, act_mask = space.masks_for_node(mixed_node)
        assert dim_mask.all()
        assert act_mask.all()

    def test_partition_masked_below_top_levels(self, mixed_node):
        config = NeuroCutsConfig(partition_mode="simple", partition_top_levels=1)
        space = NeuroCutsActionSpace(config)
        _, act_mask_root = space.masks_for_node(make_node(mixed_node.rules, depth=0))
        _, act_mask_deep = space.masks_for_node(make_node(mixed_node.rules, depth=2))
        assert act_mask_root[len(CUT_SIZES):].any()
        assert not act_mask_deep[len(CUT_SIZES):].any()

    def test_partition_masked_when_it_cannot_separate(self):
        config = NeuroCutsConfig(partition_mode="simple", partition_top_levels=1)
        space = NeuroCutsActionSpace(config)
        node = make_node([Rule.wildcard(priority=1),
                          Rule.wildcard(priority=0, name="d2")])
        _, act_mask = space.masks_for_node(node)
        assert not act_mask[len(CUT_SIZES):].any()

    def test_narrow_dimension_masked(self, mixed_node):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="none"))
        box = list(FULL_SPACE)
        box[int(Dimension.PROTOCOL)] = (6, 7)
        node = Node(ranges=tuple(box), rules=list(mixed_node.rules))
        dim_mask, _ = space.masks_for_node(node)
        assert not dim_mask[int(Dimension.PROTOCOL)]

    def test_all_actions_enumeration(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="none"))
        actions = space.all_actions()
        assert len(actions) == 5 * len(CUT_SIZES)
        assert all(space.space.contains(a) for a in actions)

    def test_describe_mentions_tuple(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig())
        assert "Discrete" in space.describe()


class TestObservationEncoding:
    def test_binary_encode_msb_first(self):
        assert list(binary_encode(5, 4)) == [0, 1, 0, 1]

    def test_binary_encode_rejects_overflow(self):
        with pytest.raises(ValueError):
            binary_encode(16, 4)

    def test_one_hot(self):
        vec = one_hot(2, 5)
        assert vec[2] == 1.0 and vec.sum() == 1.0
        with pytest.raises(ValueError):
            one_hot(5, 5)

    def test_observation_size_and_bounds(self, mixed_node):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="simple"))
        encoder = ObservationEncoder(space)
        obs = encoder.encode(mixed_node)
        assert obs.shape == (encoder.size,)
        assert np.all((obs == 0.0) | (obs == 1.0))
        assert encoder.space.contains(obs)

    def test_observation_distinguishes_boxes(self, mixed_node):
        space = NeuroCutsActionSpace(NeuroCutsConfig())
        encoder = ObservationEncoder(space)
        obs_root = encoder.encode(mixed_node)
        child = mixed_node.apply(CutAction(Dimension.SRC_IP, 4))[1]
        obs_child = encoder.encode(child)
        assert not np.array_equal(obs_root, obs_child)

    def test_observation_reflects_partition_state(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig(partition_mode="simple"))
        encoder = ObservationEncoder(space)
        node = make_node([
            Rule.from_prefixes(src_ip="10.0.0.0/8", priority=2),
            Rule.wildcard(priority=1),
        ])
        small, large = node.apply(PartitionAction(Dimension.SRC_IP, 0.5))
        assert not np.array_equal(encoder.encode(small), encoder.encode(large))

    def test_describe_reports_layout(self):
        space = NeuroCutsActionSpace(NeuroCutsConfig())
        encoder = ObservationEncoder(space)
        assert str(encoder.size) in encoder.describe()
