"""Tests for the metrics registry (`repro.obs.metrics`).

The registry's whole reason to exist is the shard boundary: registries must
pickle, and merging them must be exact and order-independent — the same
contract the raw-latency percentile merge in `repro.serve.sharded` honours.
So the tests here lean on pickling round-trips, merge associativity, and
the serving integration that carries a registry across `merge_reports`.
"""

from __future__ import annotations

import pickle

import pytest

from repro.obs import MetricsRegistry, stable_dict
from repro.obs.metrics import TIMING_PERCENTILES, Counter, Gauge, Timing
from repro.serve import (
    BatchPolicy,
    ClassificationService,
    ShardTenant,
    TenantRegistry,
    merge_reports,
    serve_sharded,
)
from repro.workloads import (
    ChurnConfig,
    FlowTraceConfig,
    build_workload,
    make_tenant_specs,
)


def _registry(counter=0, gauge=0.0, samples=()):
    reg = MetricsRegistry()
    if counter:
        reg.counter("c").inc(counter)
    if gauge:
        reg.gauge("g").set(gauge)
    for sample in samples:
        reg.timing("t").observe(sample)
    return reg


class TestPrimitives:
    def test_counter_rejects_negative_and_float_drift(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_merge_keeps_max_and_sums_updates(self):
        left, right = Gauge("g"), Gauge("g")
        left.set(3.0)
        right.set(2.0)
        right.set(7.0)
        left.merge(right)
        assert left.value == 7.0
        assert left.updates == 3

    def test_timing_stats_over_raw_samples(self):
        timing = Timing("t")
        for sample in (0.1, 0.3, 0.2):
            timing.observe(sample)
        assert timing.count == 3
        assert timing.total == pytest.approx(0.6)
        assert timing.mean == pytest.approx(0.2)
        assert timing.max == pytest.approx(0.3)
        assert timing.percentile(50) == pytest.approx(0.2)
        summary = timing.as_dict()
        for pct in TIMING_PERCENTILES:
            assert f"p{pct:g}_seconds" in summary

    def test_empty_timing_summary_is_zeroed(self):
        timing = Timing("t")
        assert timing.count == 0
        assert timing.mean == 0.0
        assert timing.percentile(99) == 0.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.timing("y") is reg.timing("y")
        assert len(reg) == 2

    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.timing("x")

    def test_span_records_even_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("phase"):
                raise RuntimeError("boom")
        assert reg.timing("phase").count == 1

    def test_merge_is_exact_and_associative_across_pickling(self):
        regs = [
            _registry(counter=3, gauge=1.0, samples=(0.1, 0.2)),
            _registry(counter=5, gauge=9.0, samples=(0.05,)),
            _registry(counter=2, samples=(0.4, 0.3, 0.9)),
        ]
        # The shard boundary: registries cross it pickled.
        thawed = [pickle.loads(pickle.dumps(r)) for r in regs]

        left = MetricsRegistry.merged([thawed[0], thawed[1]])
        left.merge(thawed[2])
        right = MetricsRegistry.merged([thawed[1], thawed[2], thawed[0]])

        assert left.counters["c"].value == right.counters["c"].value == 10
        assert left.gauges["g"].value == right.gauges["g"].value == 9.0
        assert sorted(left.timings["t"].samples) == \
            sorted(right.timings["t"].samples)
        assert left.timings["t"].count == 6
        assert left.timings["t"].percentile(99) == \
            pytest.approx(right.timings["t"].percentile(99))

    def test_merged_leaves_inputs_untouched(self):
        one = _registry(counter=1, samples=(0.5,))
        two = _registry(counter=2)
        merged = MetricsRegistry.merged([one, two])
        merged.counter("c").inc(100)
        merged.timing("t").observe(9.9)
        assert one.counters["c"].value == 1
        assert two.counters["c"].value == 2
        assert one.timings["t"].samples == [0.5]

    def test_snapshot_is_detached_from_the_live_registry(self):
        live = _registry(counter=3, gauge=2.0, samples=(0.1, 0.2))
        frozen = live.snapshot()
        assert frozen.counters["c"].value == 3
        assert frozen.gauges["g"].value == 2.0
        assert frozen.timings["t"].samples == [0.1, 0.2]
        # The live side keeps observing; the snapshot must not move.
        live.counter("c").inc(10)
        live.timing("t").observe(9.9)
        live.gauge("g").set(8.0)
        assert frozen.counters["c"].value == 3
        assert frozen.gauges["g"].value == 2.0
        assert frozen.timings["t"].samples == [0.1, 0.2]
        # And vice versa: mutating the snapshot leaves the live side alone.
        frozen.counter("c").inc(100)
        assert live.counters["c"].value == 13

    def test_summary_and_as_dict_have_stable_keys(self):
        reg = _registry(counter=2, gauge=4.0, samples=(0.1,))
        snapshot = reg.as_dict()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["counters"]["c"] == 2
        assert snapshot["timings"]["t"]["count"] == 1


class TestStableDict:
    def test_sorts_and_coerces(self):
        import numpy as np

        out = stable_dict({"b": np.int64(2), "a": (1, 2), "c": {"z": 1}})
        assert list(out) == ["a", "b", "c"]
        assert out["b"] == 2 and isinstance(out["b"], int)
        assert out["a"] == [1, 2]
        assert out["c"] == {"z": 1}


def _serve_sharded(num_workers, seed=4):
    specs = make_tenant_specs(3, families=("acl1", "ipc1"),
                              num_rules=50, seed=seed)
    workload = build_workload(
        specs, FlowTraceConfig(num_packets=1500, num_flows=120, seed=seed),
        churn=ChurnConfig(num_events=2, adds_per_event=2,
                          removes_per_event=1),
    )
    tenants = [ShardTenant(s.tenant_id, s.algorithm, s.binth) for s in specs]
    return serve_sharded(tenants, workload.rulesets, workload.requests,
                         workload.updates, num_workers=num_workers,
                         backend="serial")


class TestServingIntegration:
    def test_merged_report_carries_exact_shard_metrics(self):
        outcomes, merged, _ = _serve_sharded(num_workers=2)
        assert len(outcomes) == 2
        metrics = merged.metrics
        assert metrics is not None
        # Counters are exact sums across shards.
        assert metrics.counters["serve.requests"].value == \
            merged.num_requests
        assert metrics.counters["serve.batches"].value == merged.num_batches
        # Timing series concatenate raw samples: one queue-wait per request,
        # one flush per batch, one swap-install per installed swap.
        assert metrics.timings["serve.queue_wait_seconds"].count == \
            merged.num_requests
        assert metrics.timings["serve.batch_flush_seconds"].count == \
            merged.num_batches
        assert metrics.timings["serve.swap_install_seconds"].count == \
            merged.swaps
        assert metrics.timings["engine.compile_seconds"].count >= 3
        # Stats objects survive the merge too.
        assert merged.swap_stats is not None
        assert merged.swap_stats.swaps == merged.swaps
        per_shard = [o.report.metrics.counters["serve.requests"].value
                     for o in outcomes]
        assert sum(per_shard) == merged.num_requests

    def test_single_process_matches_sharded_counters(self):
        _, merged_1, _ = _serve_sharded(num_workers=1)
        _, merged_2, _ = _serve_sharded(num_workers=2)
        assert merged_1.deterministic_counters() == \
            merged_2.deterministic_counters()
        one = merged_1.metrics
        two = merged_2.metrics
        for name in ("serve.requests", "serve.batches"):
            assert one.counters[name].value == two.counters[name].value

    def test_report_metrics_are_a_snapshot_not_the_live_registry(self):
        specs = make_tenant_specs(1, families=("acl1",), num_rules=40,
                                  seed=7)
        workload = build_workload(
            specs, FlowTraceConfig(num_packets=400, num_flows=60, seed=7))
        registry = TenantRegistry(background_swaps=False)
        for spec in specs:
            registry.register(spec.tenant_id,
                              workload.rulesets[spec.tenant_id],
                              algorithm=spec.algorithm, binth=spec.binth)
        service = ClassificationService(registry, BatchPolicy(max_batch=32))
        first = service.serve(workload.requests)
        served = first.metrics.counters["serve.requests"].value
        assert served == first.num_requests
        # A second run on the same service keeps writing into the live
        # registry (cumulative by design) but must not move the first
        # report's embedded snapshot.
        second = service.serve(workload.requests)
        assert first.metrics.counters["serve.requests"].value == served
        assert second.metrics.counters["serve.requests"].value == 2 * served
        assert registry.metrics.counters["serve.requests"].value == 2 * served

    def test_merge_reports_without_metrics_stays_none(self):
        outcomes, _, _ = _serve_sharded(num_workers=2)
        for outcome in outcomes:
            outcome.report.metrics = None
            outcome.report.swap_stats = None
            outcome.report.retrain_stats = None
        merged = merge_reports(outcomes, wall_seconds=1.0)
        assert len(merged.metrics.counters) == 0
        assert merged.retrain_stats is None
